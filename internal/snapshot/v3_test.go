package snapshot_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"geoblocks"
	"geoblocks/internal/core"
	"geoblocks/internal/snapshot"
)

// saveFixtureV3 writes a pristine format-v3 snapshot.
func saveFixtureV3(t *testing.T) (string, []snapshot.Shard, snapshot.Manifest) {
	t.Helper()
	shards := buildShards(t, 4000, 42)
	dir := filepath.Join(t.TempDir(), "test")
	m := testManifest(shards)
	m.FormatVersion = snapshot.FormatVersionV3
	saved, err := snapshot.Save(dir, m, shards)
	if err != nil {
		t.Fatal(err)
	}
	return dir, shards, saved
}

// refreshV3TableCRC recomputes a v3 shard file's table checksum after a
// test rewrites eagerly-checked bytes, so the targeted structural check
// (not the checksum) has to catch the mutation. The checksum covers
// [0,120) ++ [124,dataOff) — see docs/FORMAT.md Sec. 8.
func refreshV3TableCRC(b []byte) []byte {
	dataOff := binary.LittleEndian.Uint64(b[96:])
	covered := append(append([]byte(nil), b[:120]...), b[124:dataOff]...)
	binary.LittleEndian.PutUint32(b[120:], core.CRC32C(covered))
	return b
}

func queryAll(t *testing.T, shards []snapshot.Shard) []string {
	t.Helper()
	poly, err := geoblocks.NewPolygon([]geoblocks.Point{
		geoblocks.Pt(10, 10), geoblocks.Pt(90, 15), geoblocks.Pt(80, 85), geoblocks.Pt(15, 70),
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []geoblocks.AggRequest{geoblocks.Count(), geoblocks.Min("fare"), geoblocks.Max("fare"), geoblocks.Sum("fare")}
	out := make([]string, len(shards))
	for i := range shards {
		res, err := shards[i].Block.Query(poly, reqs...)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = fmt.Sprint(res.Count, res.Values)
	}
	return out
}

func TestSaveLoadRoundTripV3(t *testing.T) {
	dir, shards, m := saveFixtureV3(t)
	if m.FormatVersion != snapshot.FormatVersionV3 {
		t.Fatalf("saved format version %d", m.FormatVersion)
	}
	for _, e := range m.Shards {
		if filepath.Ext(e.File) != ".gb3" {
			t.Fatalf("v3 shard file %q", e.File)
		}
	}
	lm, loaded, err := snapshot.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lm.FormatVersion != snapshot.FormatVersionV3 || len(loaded) != len(shards) {
		t.Fatalf("loaded %d shards at version %d", len(loaded), lm.FormatVersion)
	}
	for i := range loaded {
		if !loaded[i].Block.Mapped() {
			t.Fatalf("v3 eager load shard %d should be a mapped view", i)
		}
	}
	want := queryAll(t, shards)
	got := queryAll(t, loaded)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("shard %d answers differ through v3 round trip: %s vs %s", i, got[i], want[i])
		}
	}
}

func TestOpenLazy(t *testing.T) {
	dir, shards, m := saveFixtureV3(t)
	lm, lazy, err := snapshot.OpenLazy(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lm.FormatVersion != snapshot.FormatVersionV3 || len(lazy) != len(shards) {
		t.Fatalf("lazy open: %d shards at version %d", len(lazy), lm.FormatVersion)
	}
	for i, ls := range lazy {
		if ls.Cell != shards[i].Cell {
			t.Fatalf("lazy shard %d cell %v, want %v", i, ls.Cell, shards[i].Cell)
		}
		if ls.Info.NumCells != shards[i].Block.NumCells() || ls.Info.Rows != shards[i].Block.NumTuples() {
			t.Fatalf("lazy shard %d metadata: %d cells / %d rows, want %d / %d",
				i, ls.Info.NumCells, ls.Info.Rows, shards[i].Block.NumCells(), shards[i].Block.NumTuples())
		}
		if ls.Bytes != m.Shards[i].Bytes {
			t.Fatalf("lazy shard %d is %d bytes, manifest says %d", i, ls.Bytes, m.Shards[i].Bytes)
		}
	}
}

func TestOpenLazyRejectsV2(t *testing.T) {
	dir, _, _ := saveFixture(t) // v2 fixture
	_, _, err := snapshot.OpenLazy(dir)
	if !errors.Is(err, snapshot.ErrEagerOnly) {
		t.Fatalf("lazy open of a v2 snapshot: got %v, want ErrEagerOnly", err)
	}
}

func TestClone(t *testing.T) {
	dir, shards, m := saveFixtureV3(t)
	dst := filepath.Join(t.TempDir(), "copy")
	cm, err := snapshot.Clone(dir, dst)
	if err != nil {
		t.Fatal(err)
	}
	if cm.FormatVersion != m.FormatVersion || len(cm.Shards) != len(m.Shards) {
		t.Fatalf("clone manifest mismatch: %+v", cm)
	}
	_, loaded, err := snapshot.Load(dst)
	if err != nil {
		t.Fatalf("clone does not load: %v", err)
	}
	want := queryAll(t, shards)
	got := queryAll(t, loaded)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("shard %d answers differ through clone: %s vs %s", i, got[i], want[i])
		}
	}

	// Cloning onto itself is a durable no-op.
	if _, err := snapshot.Clone(dir, dir); err != nil {
		t.Fatalf("self-clone: %v", err)
	}
	if _, _, err := snapshot.Load(dir); err != nil {
		t.Fatalf("source damaged by self-clone: %v", err)
	}

	// Clone respects the foreign-directory guard.
	foreign := filepath.Join(t.TempDir(), "precious")
	if err := os.MkdirAll(foreign, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(foreign, "keep.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Clone(dir, foreign); err == nil {
		t.Fatal("Clone replaced a non-snapshot directory")
	}
}

// TestV3LoadCorruption extends the corruption table to v3 artifacts. The
// eager checks (manifest, header, section table, meta) must fail both
// Load and OpenLazy; data-region corruption must pass OpenLazy (the lazy
// path does not read data pages) and fail at materialization — here via
// eager Load, and at query time in the store's fault-time test.
func TestV3LoadCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
		wantErr error
		// lazyOpens marks corruption OpenLazy must NOT detect (it lives
		// in the lazily-checksummed data region).
		lazyOpens bool
	}{
		{"shard truncated inside section table", func(t *testing.T, dir string) {
			patchFile(t, filepath.Join(dir, "shard-00000.gb3"), func(b []byte) []byte { return b[:130] })
		}, snapshot.ErrCorrupt, false},
		{"shard header magic flipped", func(t *testing.T, dir string) {
			patchFile(t, filepath.Join(dir, "shard-00000.gb3"), func(b []byte) []byte {
				b[0] ^= 0xff
				return b
			})
		}, snapshot.ErrCorrupt, false},
		{"shard version bumped", func(t *testing.T, dir string) {
			patchFile(t, filepath.Join(dir, "shard-00000.gb3"), func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[4:], 9)
				return b
			})
		}, snapshot.ErrVersion, false},
		{"section offset misaligned", func(t *testing.T, dir string) {
			patchFile(t, filepath.Join(dir, "shard-00000.gb3"), func(b []byte) []byte {
				// Knock the first section table entry off its 8-byte
				// alignment, then recompute the table CRC so the
				// structural alignment check has to catch it.
				off := binary.LittleEndian.Uint64(b[128:])
				binary.LittleEndian.PutUint64(b[128:], off+4)
				return refreshV3TableCRC(b)
			})
		}, snapshot.ErrCorrupt, false},
		{"table CRC bit flip", func(t *testing.T, dir string) {
			patchFile(t, filepath.Join(dir, "shard-00000.gb3"), func(b []byte) []byte {
				b[120] ^= 0x01
				return b
			})
		}, snapshot.ErrCorrupt, false},
		{"manifest crc falsified", func(t *testing.T, dir string) {
			rewriteManifest(t, dir, func(m *map[string]any) {
				sh := firstShard(*m)
				sh["crc32c"] = float64(uint32(sh["crc32c"].(float64)) ^ 1)
			})
		}, snapshot.ErrCorrupt, false},
		{"data region bit flip", func(t *testing.T, dir string) {
			patchFile(t, filepath.Join(dir, "shard-00000.gb3"), func(b []byte) []byte {
				dataOff := binary.LittleEndian.Uint64(b[96:])
				b[dataOff+9] ^= 0x10
				return b
			})
		}, snapshot.ErrCorrupt, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, _, _ := saveFixtureV3(t)
			tc.corrupt(t, dir)

			_, shards, err := snapshot.Load(dir)
			if err == nil || !errors.Is(err, tc.wantErr) {
				t.Fatalf("eager load: error %v, want %v", err, tc.wantErr)
			}
			if shards != nil {
				t.Fatal("corrupt load returned shards")
			}

			_, lazy, lerr := snapshot.OpenLazy(dir)
			if tc.lazyOpens {
				if lerr != nil {
					t.Fatalf("lazy open must defer data-region checks, got %v", lerr)
				}
				if len(lazy) == 0 {
					t.Fatal("lazy open returned no shards")
				}
			} else if lerr == nil || !errors.Is(lerr, tc.wantErr) {
				t.Fatalf("lazy open: error %v, want %v", lerr, tc.wantErr)
			}
		})
	}
}
