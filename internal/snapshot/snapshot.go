package snapshot

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"geoblocks"
	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
	"geoblocks/internal/geom"
)

// FormatVersion is the default snapshot directory format: version-2
// framed shard payloads, decoded eagerly on load. FormatVersionV3 marks
// a directory whose shards are format-v3 random-access files (see
// core.EncodeV3) that OpenLazy can serve via mmap without decoding;
// Load reads both. Bump on incompatible manifest or layout changes;
// docs/FORMAT.md records the policy.
const (
	FormatVersion   = 1
	FormatVersionV3 = 2
)

// Artifact file names inside a snapshot directory.
const (
	// ManifestFile is the JSON manifest.
	ManifestFile = "manifest.json"
	// ManifestChecksumFile is the hex CRC32C sidecar covering the exact
	// bytes of ManifestFile.
	ManifestChecksumFile = "manifest.crc32c"
)

// Typed load failures. Every Load error that stems from the artifact
// content (rather than plain filesystem trouble like a missing
// directory) wraps one of these.
var (
	// ErrCorrupt reports an artifact whose bytes fail validation:
	// checksum mismatch, truncation, bad magic, or manifest entries
	// contradicting the decoded payloads.
	ErrCorrupt = errors.New("snapshot: corrupt snapshot")
	// ErrVersion reports a snapshot written in a format version this
	// build does not read — the artifact may be perfectly intact.
	ErrVersion = errors.New("snapshot: unsupported snapshot version")
)

// ShardEntry is one shard's manifest record.
type ShardEntry struct {
	// Cell is the shard's prefix cell as a human-readable level-tagged
	// token (cellid.ID.String()); informational only.
	Cell string `json:"cell"`
	// CellID is the raw cell id as 16 lower-case hex digits — the
	// machine-readable form Load parses.
	CellID string `json:"cell_id"`
	// File is the shard payload's file name within the snapshot
	// directory (always a bare name, never a path).
	File string `json:"file"`
	// Rows is the shard block's tuple count.
	Rows uint64 `json:"rows"`
	// Bytes is the total framed file size in bytes.
	Bytes int64 `json:"bytes"`
	// CRC32C is the Castagnoli checksum of the frame's payload (equal to
	// the frame trailer).
	CRC32C uint32 `json:"crc32c"`
}

// Manifest is the snapshot's metadata document, serialized as
// manifest.json. All fields are required; unknown fields are ignored on
// read (additive evolution within one format version).
type Manifest struct {
	FormatVersion int    `json:"format_version"`
	Dataset       string `json:"dataset"`
	// Level is the block grid level of every shard.
	Level int `json:"level"`
	// ShardLevel is the cell level of the spatial partition.
	ShardLevel int `json:"shard_level"`
	// CacheThreshold and CacheAutoRefresh are the dataset's query-cache
	// configuration; caches are rebuilt empty on restore.
	CacheThreshold   float64 `json:"cache_threshold"`
	CacheAutoRefresh int     `json:"cache_auto_refresh"`
	// PyramidLevels is the dataset's pyramid configuration (the number of
	// coarser levels each shard serves). Pyramid aggregates are never
	// persisted — only the base-level payloads are — so restore re-derives
	// the levels from this count. Absent in pre-pyramid snapshots, which
	// read as 0 (no pyramid) within the same format version.
	PyramidLevels int `json:"pyramid_levels,omitempty"`
	// ResultCacheBytes and ResultCacheMinHits are the dataset's
	// result-cache configuration (internal/resultcache); like the query
	// caches, result-cache contents are never persisted — restore starts
	// a cold cache from this configuration. Absent in older snapshots,
	// which read as 0 (no result cache) within the same format version.
	ResultCacheBytes   int64 `json:"result_cache_bytes,omitempty"`
	ResultCacheMinHits int   `json:"result_cache_min_hits,omitempty"`
	// IngestSeq is the highest streaming-ingest batch sequence number
	// whose rows are folded into the snapshotted base blocks. A restore
	// replays only WAL batches with seq > IngestSeq (see wal.go), so a
	// snapshot plus its ingest WAL is a complete recovery point with no
	// row lost or double-counted. Absent in pre-ingest snapshots, which
	// read as 0 (replay the whole WAL) within the same format version.
	IngestSeq uint64 `json:"ingest_seq,omitempty"`
	// AssignmentEpoch is the epoch of the cluster shard→node assignment
	// the serving node held when the snapshot was taken (cmd/geoblocksd
	// -cluster-config). Purely informational for single-node restores;
	// a cluster operator uses it to tell which assignment generation a
	// snapshot was serving under. Absent (0) outside cluster mode and in
	// pre-cluster snapshots within the same format version.
	AssignmentEpoch uint64 `json:"assignment_epoch,omitempty"`
	// Bound is the dataset domain as [minX, minY, maxX, maxY].
	Bound [4]float64 `json:"bound"`
	// Columns are the value-column names, in schema order.
	Columns []string `json:"columns"`
	// Shards lists every shard in ascending cell order.
	Shards []ShardEntry `json:"shards"`
}

// Shard pairs a shard's prefix cell with its block: Save's input and
// Load's output (Load returns blocks without caches; the store layer
// re-enables them per the manifest).
type Shard struct {
	Cell  cellid.ID
	Block *geoblocks.GeoBlock
}

// shardFile names the i-th shard payload for the given snapshot format:
// .gbk framed payloads in version 1, .gb3 random-access files in
// version 2 (the extension is informational; readers go by the manifest).
func shardFile(formatVersion, i int) string {
	if formatVersion == FormatVersionV3 {
		return fmt.Sprintf("shard-%05d.gb3", i)
	}
	return fmt.Sprintf("shard-%05d.gbk", i)
}

// Save writes an atomic snapshot of the shards under dir, replacing any
// previous snapshot there. The metadata fields of m (everything but
// Shards) must be filled by the caller; m.FormatVersion selects the
// shard payload format (0 defaults to the framed version-1 layout;
// FormatVersionV3 writes mappable format-v3 files). Save computes the
// per-shard entries while writing the payload files in parallel, stages
// everything in a temp directory with fsync, and renames it into place.
// It returns the completed manifest.
func Save(dir string, m Manifest, shards []Shard) (Manifest, error) {
	if m.Dataset == "" {
		return Manifest{}, fmt.Errorf("snapshot: dataset name must not be empty")
	}
	if len(shards) == 0 {
		return Manifest{}, fmt.Errorf("snapshot: no shards to save")
	}
	switch m.FormatVersion {
	case 0:
		m.FormatVersion = FormatVersion
	case FormatVersion, FormatVersionV3:
	default:
		return Manifest{}, fmt.Errorf("snapshot: cannot write format version %d", m.FormatVersion)
	}
	m.Shards = make([]ShardEntry, len(shards))

	err := stageAndSwap(dir, func(tmp string) error {
		if err := forEachShard(len(shards), func(i int) error {
			name := shardFile(m.FormatVersion, i)
			entry, err := writeShard(filepath.Join(tmp, name), shards[i], m.FormatVersion)
			if err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
			entry.File = name
			m.Shards[i] = entry
			return nil
		}); err != nil {
			return err
		}
		return writeManifestFiles(tmp, m)
	})
	if err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// Clone copies a complete snapshot byte-for-byte from srcDir to dstDir
// with the same staging, fsync and atomic-swap discipline as Save. It is
// how a mapped (read-only) dataset snapshots itself without faulting
// every shard back into memory: the artifacts it serves from ARE the
// snapshot. The source manifest is checksum-verified first; shard bytes
// are trusted as-is (their checksums travel with them).
func Clone(srcDir, dstDir string) (Manifest, error) {
	m, err := readManifest(srcDir)
	if err != nil {
		return Manifest{}, err
	}
	if err := validateManifest(&m); err != nil {
		return Manifest{}, err
	}
	if sAbs, err1 := filepath.Abs(srcDir); err1 == nil {
		if dAbs, err2 := filepath.Abs(dstDir); err2 == nil && sAbs == dAbs {
			return m, nil // snapshotting onto itself is a durable no-op
		}
	}
	err = stageAndSwap(dstDir, func(tmp string) error {
		for i := range m.Shards {
			e := &m.Shards[i]
			data, err := os.ReadFile(filepath.Join(srcDir, e.File))
			if err != nil {
				return fmt.Errorf("%w: shard file %s: %v", ErrCorrupt, e.File, err)
			}
			if int64(len(data)) != e.Bytes {
				return fmt.Errorf("%w: shard file %s is %d bytes, manifest says %d", ErrCorrupt, e.File, len(data), e.Bytes)
			}
			if err := writeFileSync(filepath.Join(tmp, e.File), data); err != nil {
				return err
			}
		}
		return writeManifestFiles(tmp, m)
	})
	if err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// writeManifestFiles writes manifest.json plus its checksum sidecar into
// dir (staging space; files are fsynced).
func writeManifestFiles(dir string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := writeFileSync(filepath.Join(dir, ManifestFile), data); err != nil {
		return err
	}
	sum := fmt.Sprintf("%08x\n", core.CRC32C(data))
	return writeFileSync(filepath.Join(dir, ManifestChecksumFile), []byte(sum))
}

// stageAndSwap runs fill over a fresh temp directory next to dir, fsyncs
// it, and atomically swaps it into place, replacing any previous
// snapshot at dir. Shared by Save and Clone.
func stageAndSwap(dir string, fill func(tmp string) error) error {
	dir = filepath.Clean(dir)
	// Only ever replace a previous snapshot (or an empty directory):
	// the swap moves the existing target aside and deletes it, and that
	// must never be able to destroy an unrelated directory handed in by
	// a caller (the HTTP snapshot endpoint accepts client paths).
	if st, err := os.Stat(dir); err == nil {
		if !st.IsDir() {
			return fmt.Errorf("snapshot: target %s exists and is not a directory", dir)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		if len(entries) > 0 {
			if _, err := os.Stat(filepath.Join(dir, ManifestFile)); err != nil {
				return fmt.Errorf("snapshot: refusing to replace %s: non-empty directory without a snapshot manifest", dir)
			}
		}
	}
	parent := filepath.Dir(dir)
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	tmp, err := os.MkdirTemp(parent, ".snap-")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer os.RemoveAll(tmp)

	if err := fill(tmp); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := syncDir(tmp); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}

	// Swap the staged directory into place. A previous snapshot is moved
	// aside first so the target path atomically transitions between two
	// complete snapshots (never a partial one).
	old := tmp + ".old"
	replaced := false
	if _, err := os.Stat(dir); err == nil {
		if err := os.Rename(dir, old); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		replaced = true
	}
	if err := os.Rename(tmp, dir); err != nil {
		if replaced {
			_ = os.Rename(old, dir) // best-effort restore of the previous snapshot
		}
		return fmt.Errorf("snapshot: %w", err)
	}
	if replaced {
		if err := os.RemoveAll(old); err != nil {
			return fmt.Errorf("snapshot: removing previous snapshot: %w", err)
		}
	}
	if err := syncDir(parent); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// Load reads and fully validates a snapshot directory, returning the
// manifest and one Shard per manifest entry, in manifest (ascending
// cell) order. Content-level failures wrap ErrCorrupt or ErrVersion; a
// path that simply holds no snapshot surfaces the underlying fs error.
func Load(dir string) (Manifest, []Shard, error) {
	m, err := readManifest(dir)
	if err != nil {
		return Manifest{}, nil, err
	}
	if err := validateManifest(&m); err != nil {
		return Manifest{}, nil, err
	}

	shards := make([]Shard, len(m.Shards))
	if err := forEachShard(len(m.Shards), func(i int) error {
		sh, err := loadShard(dir, &m, i)
		if err != nil {
			return err
		}
		shards[i] = sh
		return nil
	}); err != nil {
		return Manifest{}, nil, err
	}
	return m, shards, nil
}

// readManifest reads and checksum-verifies manifest.json, returning the
// parsed document after the format-version gate (but before the deeper
// validateManifest invariants).
func readManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("snapshot: %w", err)
	}
	sumData, err := os.ReadFile(filepath.Join(dir, ManifestChecksumFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("%w: manifest checksum sidecar: %v", ErrCorrupt, err)
	}
	want, err := strconv.ParseUint(strings.TrimSpace(string(sumData)), 16, 32)
	if err != nil {
		return Manifest{}, fmt.Errorf("%w: malformed manifest checksum sidecar", ErrCorrupt)
	}
	if got := core.CRC32C(data); got != uint32(want) {
		return Manifest{}, fmt.Errorf("%w: manifest CRC32C %08x does not match sidecar %08x", ErrCorrupt, got, uint32(want))
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	if m.FormatVersion != FormatVersion && m.FormatVersion != FormatVersionV3 {
		return Manifest{}, fmt.Errorf("%w: format version %d (this build reads versions %d and %d)", ErrVersion, m.FormatVersion, FormatVersion, FormatVersionV3)
	}
	return m, nil
}

// Recover sweeps the crash remnants of interrupted Saves under dataDir
// and returns one human-readable line per action taken. Three cases:
//
//   - A ".snap-*.old" directory holding a verifiable snapshot whose
//     target (dataDir/<dataset name>) is missing is the previous
//     snapshot of a Save that crashed between its two renames — it is
//     moved back into place (recovered).
//   - A ".snap-*.old" whose target exists is a superseded previous
//     snapshot whose cleanup was interrupted — it is deleted.
//   - Any other ".snap-*" entry is dead staging space — deleted.
//
// An .old remnant whose manifest cannot be read, or whose dataset name
// is not a safe path element, is left on disk and reported rather than
// guessed about. Callers (geoblocksd startup) run this before scanning
// dataDir for snapshots.
func Recover(dataDir string) ([]string, error) {
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	var actions []string
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), ".snap-") {
			continue
		}
		path := filepath.Join(dataDir, e.Name())
		if !strings.HasSuffix(e.Name(), ".old") {
			if err := os.RemoveAll(path); err != nil {
				return actions, fmt.Errorf("snapshot: %w", err)
			}
			actions = append(actions, fmt.Sprintf("removed dead staging directory %s", e.Name()))
			continue
		}
		m, err := readManifest(path)
		if err != nil {
			actions = append(actions, fmt.Sprintf("leaving %s alone: %v", e.Name(), err))
			continue
		}
		if m.Dataset == "" || m.Dataset != filepath.Base(m.Dataset) || strings.HasPrefix(m.Dataset, ".") {
			actions = append(actions, fmt.Sprintf("leaving %s alone: unsafe dataset name %q", e.Name(), m.Dataset))
			continue
		}
		target := filepath.Join(dataDir, m.Dataset)
		if _, err := os.Stat(target); err == nil {
			if err := os.RemoveAll(path); err != nil {
				return actions, fmt.Errorf("snapshot: %w", err)
			}
			actions = append(actions, fmt.Sprintf("removed superseded snapshot %s (current %s exists)", e.Name(), m.Dataset))
			continue
		}
		if err := os.Rename(path, target); err != nil {
			return actions, fmt.Errorf("snapshot: recovering %s: %w", e.Name(), err)
		}
		actions = append(actions, fmt.Sprintf("recovered snapshot %s from interrupted save (%s)", m.Dataset, e.Name()))
	}
	return actions, nil
}

// validateManifest checks the metadata and entry invariants that do not
// need the payloads: plausible levels and bound, safe file names,
// strictly ascending shard cells at the shard level.
func validateManifest(m *Manifest) error {
	if m.Dataset == "" {
		return fmt.Errorf("%w: manifest has no dataset name", ErrCorrupt)
	}
	if m.Level < 0 || m.Level > cellid.MaxLevel {
		return fmt.Errorf("%w: block level %d out of range", ErrCorrupt, m.Level)
	}
	if m.ShardLevel < 0 || m.ShardLevel > m.Level {
		return fmt.Errorf("%w: shard level %d out of range [0,%d]", ErrCorrupt, m.ShardLevel, m.Level)
	}
	bound := geom.Rect{Min: geom.Pt(m.Bound[0], m.Bound[1]), Max: geom.Pt(m.Bound[2], m.Bound[3])}
	if !bound.IsValid() {
		return fmt.Errorf("%w: invalid domain bound %v", ErrCorrupt, m.Bound)
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("%w: manifest lists no shards", ErrCorrupt)
	}
	var prev cellid.ID
	for i := range m.Shards {
		e := &m.Shards[i]
		if e.File == "" || e.File != filepath.Base(e.File) || strings.HasPrefix(e.File, ".") {
			return fmt.Errorf("%w: shard %d has unsafe file name %q", ErrCorrupt, i, e.File)
		}
		cell, err := parseCellID(e.CellID)
		if err != nil {
			return fmt.Errorf("%w: shard %d: %v", ErrCorrupt, i, err)
		}
		if cell.Level() != m.ShardLevel {
			return fmt.Errorf("%w: shard %d cell %v is at level %d, want shard level %d", ErrCorrupt, i, cell, cell.Level(), m.ShardLevel)
		}
		if i > 0 && cell <= prev {
			return fmt.Errorf("%w: shard cells not strictly ascending at entry %d", ErrCorrupt, i)
		}
		prev = cell
	}
	return nil
}

// loadShard reads, verifies and decodes one shard payload, cross-checking
// it against the manifest entry. Both payload formats decode to ordinary
// in-memory shards here — this is the eager path; OpenLazy is the one
// that defers v3 payload reads.
func loadShard(dir string, m *Manifest, i int) (Shard, error) {
	e := &m.Shards[i]
	path := filepath.Join(dir, e.File)
	var blk *geoblocks.GeoBlock
	if m.FormatVersion == FormatVersionV3 {
		data, err := os.ReadFile(path)
		if err != nil {
			return Shard{}, fmt.Errorf("%w: shard file %s: %v", ErrCorrupt, e.File, err)
		}
		if int64(len(data)) != e.Bytes {
			return Shard{}, fmt.Errorf("%w: shard file %s is %d bytes, manifest says %d", ErrCorrupt, e.File, len(data), e.Bytes)
		}
		info, err := core.ProbeV3(data, int64(len(data)))
		if err != nil {
			return Shard{}, wrapShardErr(e.File, err)
		}
		if info.DataCRC != e.CRC32C {
			return Shard{}, fmt.Errorf("%w: shard file %s data CRC32C %08x, manifest says %08x", ErrCorrupt, e.File, info.DataCRC, e.CRC32C)
		}
		blk, err = geoblocks.MapGeoBlock(data)
		if err != nil {
			return Shard{}, wrapShardErr(e.File, err)
		}
	} else {
		f, err := os.Open(path)
		if err != nil {
			return Shard{}, fmt.Errorf("%w: shard file %s: %v", ErrCorrupt, e.File, err)
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil {
			return Shard{}, fmt.Errorf("%w: shard file %s: %v", ErrCorrupt, e.File, err)
		}
		if st.Size() != e.Bytes {
			return Shard{}, fmt.Errorf("%w: shard file %s is %d bytes, manifest says %d", ErrCorrupt, e.File, st.Size(), e.Bytes)
		}
		var info geoblocks.FrameInfo
		blk, info, err = geoblocks.ReadGeoBlockFramed(f)
		if err != nil {
			return Shard{}, wrapShardErr(e.File, err)
		}
		if info.CRC32C != e.CRC32C {
			return Shard{}, fmt.Errorf("%w: shard file %s payload CRC32C %08x, manifest says %08x", ErrCorrupt, e.File, info.CRC32C, e.CRC32C)
		}
		if info.Bytes != e.Bytes {
			return Shard{}, fmt.Errorf("%w: shard file %s frame is %d bytes, manifest says %d", ErrCorrupt, e.File, info.Bytes, e.Bytes)
		}
	}
	if err := checkShardBlock(blk, m, e); err != nil {
		return Shard{}, err
	}
	cell, err := parseCellID(e.CellID)
	if err != nil {
		return Shard{}, fmt.Errorf("%w: shard file %s: %v", ErrCorrupt, e.File, err)
	}
	return Shard{Cell: cell, Block: blk}, nil
}

// checkShardBlock cross-checks a decoded block against its manifest
// entry and the dataset-wide manifest fields.
func checkShardBlock(blk *geoblocks.GeoBlock, m *Manifest, e *ShardEntry) error {
	if blk.Level() != m.Level {
		return fmt.Errorf("%w: shard file %s block level %d, manifest says %d", ErrCorrupt, e.File, blk.Level(), m.Level)
	}
	if blk.NumTuples() != e.Rows {
		return fmt.Errorf("%w: shard file %s has %d rows, manifest says %d", ErrCorrupt, e.File, blk.NumTuples(), e.Rows)
	}
	if got := blk.Schema().Names; !equalStrings(got, m.Columns) {
		return fmt.Errorf("%w: shard file %s schema %v, manifest says %v", ErrCorrupt, e.File, got, m.Columns)
	}
	bound := blk.Inner().Domain().Bound()
	if [4]float64{bound.Min.X, bound.Min.Y, bound.Max.X, bound.Max.Y} != m.Bound {
		return fmt.Errorf("%w: shard file %s domain bound disagrees with manifest", ErrCorrupt, e.File)
	}
	return nil
}

// wrapShardErr maps a core decode failure onto the snapshot-level
// sentinels with the shard file named.
func wrapShardErr(file string, err error) error {
	if errors.Is(err, core.ErrVersion) {
		return fmt.Errorf("%w: shard file %s: %v", ErrVersion, file, err)
	}
	return fmt.Errorf("%w: shard file %s: %v", ErrCorrupt, file, err)
}

// writeShard persists one shard block into path in the selected payload
// format, fsyncs it and returns the manifest entry (File is filled by
// the caller). For v3 the entry checksum is the file's data-region
// CRC32C; for framed payloads it is the frame trailer.
func writeShard(path string, sh Shard, formatVersion int) (ShardEntry, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return ShardEntry{}, err
	}
	var bytes int64
	var crc uint32
	if formatVersion == FormatVersionV3 {
		data := sh.Block.EncodeV3()
		if _, err := f.Write(data); err != nil {
			f.Close()
			return ShardEntry{}, err
		}
		info, err := core.ProbeV3(data, int64(len(data)))
		if err != nil {
			f.Close()
			return ShardEntry{}, err
		}
		bytes, crc = int64(len(data)), info.DataCRC
	} else {
		info, err := sh.Block.WriteFramed(f)
		if err != nil {
			f.Close()
			return ShardEntry{}, err
		}
		bytes, crc = info.Bytes, info.CRC32C
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return ShardEntry{}, err
	}
	if err := f.Close(); err != nil {
		return ShardEntry{}, err
	}
	return ShardEntry{
		Cell:   sh.Cell.String(),
		CellID: fmt.Sprintf("%016x", uint64(sh.Cell)),
		Rows:   sh.Block.NumTuples(),
		Bytes:  bytes,
		CRC32C: crc,
	}, nil
}

// parseCellID decodes the manifest's 16-hex-digit cell id.
func parseCellID(s string) (cellid.ID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("malformed cell id %q", s)
	}
	id := cellid.ID(v)
	if !id.IsValid() {
		return 0, fmt.Errorf("invalid cell id %q", s)
	}
	return id, nil
}

// forEachShard runs fn(i) for every shard index on a bounded worker
// pool and returns the first error. Unlike the store's CPU-bound query
// fan-out, shard IO spends most of its time blocked in read/write/fsync,
// so the pool floor is 4 regardless of GOMAXPROCS — on a 1-CPU container
// a GOMAXPROCS-sized pool would serialize the IO and leave the disk
// idle between syscalls.
func forEachShard(n int, fn func(i int) error) error {
	workers := min(max(runtime.GOMAXPROCS(0), 4), n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so the entries created in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// equalStrings reports whether two string slices are element-wise equal.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
