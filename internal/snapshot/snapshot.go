package snapshot

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"geoblocks"
	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
	"geoblocks/internal/geom"
)

// FormatVersion is the snapshot directory format this build writes and
// the only one it reads. Bump it when the manifest schema or the frame
// layout changes incompatibly; docs/FORMAT.md records the policy.
const FormatVersion = 1

// Artifact file names inside a snapshot directory.
const (
	// ManifestFile is the JSON manifest.
	ManifestFile = "manifest.json"
	// ManifestChecksumFile is the hex CRC32C sidecar covering the exact
	// bytes of ManifestFile.
	ManifestChecksumFile = "manifest.crc32c"
)

// Typed load failures. Every Load error that stems from the artifact
// content (rather than plain filesystem trouble like a missing
// directory) wraps one of these.
var (
	// ErrCorrupt reports an artifact whose bytes fail validation:
	// checksum mismatch, truncation, bad magic, or manifest entries
	// contradicting the decoded payloads.
	ErrCorrupt = errors.New("snapshot: corrupt snapshot")
	// ErrVersion reports a snapshot written in a format version this
	// build does not read — the artifact may be perfectly intact.
	ErrVersion = errors.New("snapshot: unsupported snapshot version")
)

// ShardEntry is one shard's manifest record.
type ShardEntry struct {
	// Cell is the shard's prefix cell as a human-readable level-tagged
	// token (cellid.ID.String()); informational only.
	Cell string `json:"cell"`
	// CellID is the raw cell id as 16 lower-case hex digits — the
	// machine-readable form Load parses.
	CellID string `json:"cell_id"`
	// File is the shard payload's file name within the snapshot
	// directory (always a bare name, never a path).
	File string `json:"file"`
	// Rows is the shard block's tuple count.
	Rows uint64 `json:"rows"`
	// Bytes is the total framed file size in bytes.
	Bytes int64 `json:"bytes"`
	// CRC32C is the Castagnoli checksum of the frame's payload (equal to
	// the frame trailer).
	CRC32C uint32 `json:"crc32c"`
}

// Manifest is the snapshot's metadata document, serialized as
// manifest.json. All fields are required; unknown fields are ignored on
// read (additive evolution within one format version).
type Manifest struct {
	FormatVersion int    `json:"format_version"`
	Dataset       string `json:"dataset"`
	// Level is the block grid level of every shard.
	Level int `json:"level"`
	// ShardLevel is the cell level of the spatial partition.
	ShardLevel int `json:"shard_level"`
	// CacheThreshold and CacheAutoRefresh are the dataset's query-cache
	// configuration; caches are rebuilt empty on restore.
	CacheThreshold   float64 `json:"cache_threshold"`
	CacheAutoRefresh int     `json:"cache_auto_refresh"`
	// PyramidLevels is the dataset's pyramid configuration (the number of
	// coarser levels each shard serves). Pyramid aggregates are never
	// persisted — only the base-level payloads are — so restore re-derives
	// the levels from this count. Absent in pre-pyramid snapshots, which
	// read as 0 (no pyramid) within the same format version.
	PyramidLevels int `json:"pyramid_levels,omitempty"`
	// ResultCacheBytes and ResultCacheMinHits are the dataset's
	// result-cache configuration (internal/resultcache); like the query
	// caches, result-cache contents are never persisted — restore starts
	// a cold cache from this configuration. Absent in older snapshots,
	// which read as 0 (no result cache) within the same format version.
	ResultCacheBytes   int64 `json:"result_cache_bytes,omitempty"`
	ResultCacheMinHits int   `json:"result_cache_min_hits,omitempty"`
	// Bound is the dataset domain as [minX, minY, maxX, maxY].
	Bound [4]float64 `json:"bound"`
	// Columns are the value-column names, in schema order.
	Columns []string `json:"columns"`
	// Shards lists every shard in ascending cell order.
	Shards []ShardEntry `json:"shards"`
}

// Shard pairs a shard's prefix cell with its block: Save's input and
// Load's output (Load returns blocks without caches; the store layer
// re-enables them per the manifest).
type Shard struct {
	Cell  cellid.ID
	Block *geoblocks.GeoBlock
}

// shardFile names the i-th shard payload.
func shardFile(i int) string { return fmt.Sprintf("shard-%05d.gbk", i) }

// Save writes an atomic snapshot of the shards under dir, replacing any
// previous snapshot there. The metadata fields of m (everything but
// Shards) must be filled by the caller; Save computes the per-shard
// entries while writing the payload files in parallel, stages everything
// in a temp directory with fsync, and renames it into place. It returns
// the completed manifest.
func Save(dir string, m Manifest, shards []Shard) (Manifest, error) {
	if m.Dataset == "" {
		return Manifest{}, fmt.Errorf("snapshot: dataset name must not be empty")
	}
	if len(shards) == 0 {
		return Manifest{}, fmt.Errorf("snapshot: no shards to save")
	}
	m.FormatVersion = FormatVersion
	m.Shards = make([]ShardEntry, len(shards))

	dir = filepath.Clean(dir)
	// Only ever replace a previous snapshot (or an empty directory):
	// Save moves the existing target aside and deletes it, and that must
	// never be able to destroy an unrelated directory handed in by a
	// caller (the HTTP snapshot endpoint accepts client paths).
	if st, err := os.Stat(dir); err == nil {
		if !st.IsDir() {
			return Manifest{}, fmt.Errorf("snapshot: target %s exists and is not a directory", dir)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return Manifest{}, fmt.Errorf("snapshot: %w", err)
		}
		if len(entries) > 0 {
			if _, err := os.Stat(filepath.Join(dir, ManifestFile)); err != nil {
				return Manifest{}, fmt.Errorf("snapshot: refusing to replace %s: non-empty directory without a snapshot manifest", dir)
			}
		}
	}
	parent := filepath.Dir(dir)
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return Manifest{}, fmt.Errorf("snapshot: %w", err)
	}
	tmp, err := os.MkdirTemp(parent, ".snap-")
	if err != nil {
		return Manifest{}, fmt.Errorf("snapshot: %w", err)
	}
	defer os.RemoveAll(tmp)

	if err := forEachShard(len(shards), func(i int) error {
		entry, err := writeShard(filepath.Join(tmp, shardFile(i)), shards[i])
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		entry.File = shardFile(i)
		m.Shards[i] = entry
		return nil
	}); err != nil {
		return Manifest{}, fmt.Errorf("snapshot: %w", err)
	}

	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return Manifest{}, fmt.Errorf("snapshot: %w", err)
	}
	data = append(data, '\n')
	if err := writeFileSync(filepath.Join(tmp, ManifestFile), data); err != nil {
		return Manifest{}, fmt.Errorf("snapshot: %w", err)
	}
	sum := fmt.Sprintf("%08x\n", core.CRC32C(data))
	if err := writeFileSync(filepath.Join(tmp, ManifestChecksumFile), []byte(sum)); err != nil {
		return Manifest{}, fmt.Errorf("snapshot: %w", err)
	}
	if err := syncDir(tmp); err != nil {
		return Manifest{}, fmt.Errorf("snapshot: %w", err)
	}

	// Swap the staged directory into place. A previous snapshot is moved
	// aside first so the target path atomically transitions between two
	// complete snapshots (never a partial one).
	old := tmp + ".old"
	replaced := false
	if _, err := os.Stat(dir); err == nil {
		if err := os.Rename(dir, old); err != nil {
			return Manifest{}, fmt.Errorf("snapshot: %w", err)
		}
		replaced = true
	}
	if err := os.Rename(tmp, dir); err != nil {
		if replaced {
			_ = os.Rename(old, dir) // best-effort restore of the previous snapshot
		}
		return Manifest{}, fmt.Errorf("snapshot: %w", err)
	}
	if replaced {
		if err := os.RemoveAll(old); err != nil {
			return Manifest{}, fmt.Errorf("snapshot: removing previous snapshot: %w", err)
		}
	}
	if err := syncDir(parent); err != nil {
		return Manifest{}, fmt.Errorf("snapshot: %w", err)
	}
	return m, nil
}

// Load reads and fully validates a snapshot directory, returning the
// manifest and one Shard per manifest entry, in manifest (ascending
// cell) order. Content-level failures wrap ErrCorrupt or ErrVersion; a
// path that simply holds no snapshot surfaces the underlying fs error.
func Load(dir string) (Manifest, []Shard, error) {
	m, err := readManifest(dir)
	if err != nil {
		return Manifest{}, nil, err
	}
	if err := validateManifest(&m); err != nil {
		return Manifest{}, nil, err
	}

	shards := make([]Shard, len(m.Shards))
	if err := forEachShard(len(m.Shards), func(i int) error {
		sh, err := loadShard(dir, &m, i)
		if err != nil {
			return err
		}
		shards[i] = sh
		return nil
	}); err != nil {
		return Manifest{}, nil, err
	}
	return m, shards, nil
}

// readManifest reads and checksum-verifies manifest.json, returning the
// parsed document after the format-version gate (but before the deeper
// validateManifest invariants).
func readManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("snapshot: %w", err)
	}
	sumData, err := os.ReadFile(filepath.Join(dir, ManifestChecksumFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("%w: manifest checksum sidecar: %v", ErrCorrupt, err)
	}
	want, err := strconv.ParseUint(strings.TrimSpace(string(sumData)), 16, 32)
	if err != nil {
		return Manifest{}, fmt.Errorf("%w: malformed manifest checksum sidecar", ErrCorrupt)
	}
	if got := core.CRC32C(data); got != uint32(want) {
		return Manifest{}, fmt.Errorf("%w: manifest CRC32C %08x does not match sidecar %08x", ErrCorrupt, got, uint32(want))
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	if m.FormatVersion != FormatVersion {
		return Manifest{}, fmt.Errorf("%w: format version %d (this build reads version %d)", ErrVersion, m.FormatVersion, FormatVersion)
	}
	return m, nil
}

// Recover sweeps the crash remnants of interrupted Saves under dataDir
// and returns one human-readable line per action taken. Three cases:
//
//   - A ".snap-*.old" directory holding a verifiable snapshot whose
//     target (dataDir/<dataset name>) is missing is the previous
//     snapshot of a Save that crashed between its two renames — it is
//     moved back into place (recovered).
//   - A ".snap-*.old" whose target exists is a superseded previous
//     snapshot whose cleanup was interrupted — it is deleted.
//   - Any other ".snap-*" entry is dead staging space — deleted.
//
// An .old remnant whose manifest cannot be read, or whose dataset name
// is not a safe path element, is left on disk and reported rather than
// guessed about. Callers (geoblocksd startup) run this before scanning
// dataDir for snapshots.
func Recover(dataDir string) ([]string, error) {
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	var actions []string
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), ".snap-") {
			continue
		}
		path := filepath.Join(dataDir, e.Name())
		if !strings.HasSuffix(e.Name(), ".old") {
			if err := os.RemoveAll(path); err != nil {
				return actions, fmt.Errorf("snapshot: %w", err)
			}
			actions = append(actions, fmt.Sprintf("removed dead staging directory %s", e.Name()))
			continue
		}
		m, err := readManifest(path)
		if err != nil {
			actions = append(actions, fmt.Sprintf("leaving %s alone: %v", e.Name(), err))
			continue
		}
		if m.Dataset == "" || m.Dataset != filepath.Base(m.Dataset) || strings.HasPrefix(m.Dataset, ".") {
			actions = append(actions, fmt.Sprintf("leaving %s alone: unsafe dataset name %q", e.Name(), m.Dataset))
			continue
		}
		target := filepath.Join(dataDir, m.Dataset)
		if _, err := os.Stat(target); err == nil {
			if err := os.RemoveAll(path); err != nil {
				return actions, fmt.Errorf("snapshot: %w", err)
			}
			actions = append(actions, fmt.Sprintf("removed superseded snapshot %s (current %s exists)", e.Name(), m.Dataset))
			continue
		}
		if err := os.Rename(path, target); err != nil {
			return actions, fmt.Errorf("snapshot: recovering %s: %w", e.Name(), err)
		}
		actions = append(actions, fmt.Sprintf("recovered snapshot %s from interrupted save (%s)", m.Dataset, e.Name()))
	}
	return actions, nil
}

// validateManifest checks the metadata and entry invariants that do not
// need the payloads: plausible levels and bound, safe file names,
// strictly ascending shard cells at the shard level.
func validateManifest(m *Manifest) error {
	if m.Dataset == "" {
		return fmt.Errorf("%w: manifest has no dataset name", ErrCorrupt)
	}
	if m.Level < 0 || m.Level > cellid.MaxLevel {
		return fmt.Errorf("%w: block level %d out of range", ErrCorrupt, m.Level)
	}
	if m.ShardLevel < 0 || m.ShardLevel > m.Level {
		return fmt.Errorf("%w: shard level %d out of range [0,%d]", ErrCorrupt, m.ShardLevel, m.Level)
	}
	bound := geom.Rect{Min: geom.Pt(m.Bound[0], m.Bound[1]), Max: geom.Pt(m.Bound[2], m.Bound[3])}
	if !bound.IsValid() {
		return fmt.Errorf("%w: invalid domain bound %v", ErrCorrupt, m.Bound)
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("%w: manifest lists no shards", ErrCorrupt)
	}
	var prev cellid.ID
	for i := range m.Shards {
		e := &m.Shards[i]
		if e.File == "" || e.File != filepath.Base(e.File) || strings.HasPrefix(e.File, ".") {
			return fmt.Errorf("%w: shard %d has unsafe file name %q", ErrCorrupt, i, e.File)
		}
		cell, err := parseCellID(e.CellID)
		if err != nil {
			return fmt.Errorf("%w: shard %d: %v", ErrCorrupt, i, err)
		}
		if cell.Level() != m.ShardLevel {
			return fmt.Errorf("%w: shard %d cell %v is at level %d, want shard level %d", ErrCorrupt, i, cell, cell.Level(), m.ShardLevel)
		}
		if i > 0 && cell <= prev {
			return fmt.Errorf("%w: shard cells not strictly ascending at entry %d", ErrCorrupt, i)
		}
		prev = cell
	}
	return nil
}

// loadShard reads, verifies and decodes one shard payload, cross-checking
// the frame against the manifest entry.
func loadShard(dir string, m *Manifest, i int) (Shard, error) {
	e := &m.Shards[i]
	f, err := os.Open(filepath.Join(dir, e.File))
	if err != nil {
		return Shard{}, fmt.Errorf("%w: shard file %s: %v", ErrCorrupt, e.File, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return Shard{}, fmt.Errorf("%w: shard file %s: %v", ErrCorrupt, e.File, err)
	}
	if st.Size() != e.Bytes {
		return Shard{}, fmt.Errorf("%w: shard file %s is %d bytes, manifest says %d", ErrCorrupt, e.File, st.Size(), e.Bytes)
	}
	blk, info, err := geoblocks.ReadGeoBlockFramed(f)
	if err != nil {
		if errors.Is(err, core.ErrVersion) {
			return Shard{}, fmt.Errorf("%w: shard file %s: %v", ErrVersion, e.File, err)
		}
		return Shard{}, fmt.Errorf("%w: shard file %s: %v", ErrCorrupt, e.File, err)
	}
	if info.CRC32C != e.CRC32C {
		return Shard{}, fmt.Errorf("%w: shard file %s payload CRC32C %08x, manifest says %08x", ErrCorrupt, e.File, info.CRC32C, e.CRC32C)
	}
	if info.Bytes != e.Bytes {
		return Shard{}, fmt.Errorf("%w: shard file %s frame is %d bytes, manifest says %d", ErrCorrupt, e.File, info.Bytes, e.Bytes)
	}
	if blk.Level() != m.Level {
		return Shard{}, fmt.Errorf("%w: shard file %s block level %d, manifest says %d", ErrCorrupt, e.File, blk.Level(), m.Level)
	}
	if blk.NumTuples() != e.Rows {
		return Shard{}, fmt.Errorf("%w: shard file %s has %d rows, manifest says %d", ErrCorrupt, e.File, blk.NumTuples(), e.Rows)
	}
	if got := blk.Schema().Names; !equalStrings(got, m.Columns) {
		return Shard{}, fmt.Errorf("%w: shard file %s schema %v, manifest says %v", ErrCorrupt, e.File, got, m.Columns)
	}
	bound := blk.Inner().Domain().Bound()
	if [4]float64{bound.Min.X, bound.Min.Y, bound.Max.X, bound.Max.Y} != m.Bound {
		return Shard{}, fmt.Errorf("%w: shard file %s domain bound disagrees with manifest", ErrCorrupt, e.File)
	}
	cell, err := parseCellID(e.CellID)
	if err != nil {
		return Shard{}, fmt.Errorf("%w: shard file %s: %v", ErrCorrupt, e.File, err)
	}
	return Shard{Cell: cell, Block: blk}, nil
}

// writeShard frames one shard block into path, fsyncs it and returns the
// manifest entry (File is filled by the caller).
func writeShard(path string, sh Shard) (ShardEntry, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return ShardEntry{}, err
	}
	info, err := sh.Block.WriteFramed(f)
	if err != nil {
		f.Close()
		return ShardEntry{}, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return ShardEntry{}, err
	}
	if err := f.Close(); err != nil {
		return ShardEntry{}, err
	}
	return ShardEntry{
		Cell:   sh.Cell.String(),
		CellID: fmt.Sprintf("%016x", uint64(sh.Cell)),
		Rows:   sh.Block.NumTuples(),
		Bytes:  info.Bytes,
		CRC32C: info.CRC32C,
	}, nil
}

// parseCellID decodes the manifest's 16-hex-digit cell id.
func parseCellID(s string) (cellid.ID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("malformed cell id %q", s)
	}
	id := cellid.ID(v)
	if !id.IsValid() {
		return 0, fmt.Errorf("invalid cell id %q", s)
	}
	return id, nil
}

// forEachShard runs fn(i) for every shard index on a bounded worker
// pool (the same fan-out shape as the store's batch query path) and
// returns the first error.
func forEachShard(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so the entries created in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// equalStrings reports whether two string slices are element-wise equal.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
