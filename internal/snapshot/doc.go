// Package snapshot implements durable, versioned, checksummed dataset
// snapshots for the sharded store: the persistence layer that turns the
// in-memory serving tier into an operable service that survives
// restarts.
//
// # Layout
//
// A snapshot is one directory holding a JSON manifest plus one framed
// GeoBlock payload per shard:
//
//	<dir>/
//	  manifest.json     dataset metadata + per-shard entries
//	  manifest.crc32c   CRC32C of manifest.json (hex sidecar)
//	  shard-00000.gbk   frame: "GBF1" | len u64 | v2 payload | CRC32C u32
//	  shard-00001.gbk   ...
//
// The manifest records the snapshot format version, the dataset's name,
// block level, shard level and cache configuration, and for every shard
// its prefix cell, row count, byte length and payload CRC32C — enough to
// rebuild the serving dataset exactly and to verify every byte read
// back. docs/FORMAT.md specifies all three artifact kinds byte by byte.
//
// # Atomicity and durability
//
// Save stages the whole snapshot in a hidden temp directory next to the
// target, fsyncs every file and the directory, then renames it into
// place (replacing a previous snapshot, if any, with a second rename).
// A reader therefore never observes a half-written snapshot under the
// target path. A crash mid-save leaves at worst a hidden ".snap-"
// staging directory, or — in the window between the two replacement
// renames — the previous snapshot parked under a ".snap-*.old" name;
// Recover sweeps a data directory of both, restoring an orphaned
// previous snapshot into place. Save refuses to replace a non-empty
// target that is not itself a snapshot, so a wrong path cannot destroy
// unrelated data.
//
// # Fail-closed reads
//
// Load validates before it trusts: the manifest checksum and format
// version, then — in parallel across shards — each frame's magic,
// declared length, payload version and CRC32C trailer, and finally the
// decoded block's level, row count, schema and domain against the
// manifest. Any mismatch fails the whole load with a typed error —
// ErrCorrupt or ErrVersion — and no partial result: the store layer
// registers a restored dataset only after every shard verified.
//
// Shard payload files are written and read with the worker-pool fan-out
// used elsewhere in the store, so snapshot save/restore of a many-shard
// dataset scales with the disks and cores available.
package snapshot
