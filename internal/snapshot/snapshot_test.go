package snapshot_test

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"geoblocks"
	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
	"geoblocks/internal/geom"
	"geoblocks/internal/snapshot"
)

var testBound = geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}

// buildShards builds a two-shard test dataset by hand: rows partitioned
// by level-1 cell, one GeoBlock per non-empty cell, all over one domain
// (the same construction the store uses).
func buildShards(t *testing.T, rows int, seed int64) []snapshot.Shard {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dom := cellid.MustDomain(testBound)
	schema := geoblocks.NewSchema("fare", "distance")

	byCell := make(map[cellid.ID][][3]float64)
	for i := 0; i < rows; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		cell := dom.CellAt(geoblocks.Pt(x, y), 1)
		byCell[cell] = append(byCell[cell], [3]float64{x, y, rng.Float64() * 50})
	}
	cells := make([]cellid.ID, 0, len(byCell))
	for cell := range byCell {
		cells = append(cells, cell)
	}
	// Ascending cell order, as the store produces.
	for i := range cells {
		for j := i + 1; j < len(cells); j++ {
			if cells[j] < cells[i] {
				cells[i], cells[j] = cells[j], cells[i]
			}
		}
	}

	shards := make([]snapshot.Shard, 0, len(cells))
	for _, cell := range cells {
		rowsHere := byCell[cell]
		pts := make([]geoblocks.Point, len(rowsHere))
		cols := [][]float64{make([]float64, len(rowsHere)), make([]float64, len(rowsHere))}
		for i, r := range rowsHere {
			pts[i] = geoblocks.Pt(r[0], r[1])
			cols[0][i] = r[2]
			cols[1][i] = float64(i % 7)
		}
		b, err := geoblocks.NewBuilder(testBound, schema)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.AddRows(pts, cols); err != nil {
			t.Fatal(err)
		}
		blk, err := b.Build(8, nil)
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, snapshot.Shard{Cell: cell, Block: blk})
	}
	if len(shards) < 2 {
		t.Fatalf("want a multi-shard fixture, got %d shards", len(shards))
	}
	return shards
}

func testManifest(shards []snapshot.Shard) snapshot.Manifest {
	return snapshot.Manifest{
		Dataset:          "test",
		Level:            8,
		ShardLevel:       1,
		CacheThreshold:   0.1,
		CacheAutoRefresh: 500,
		Bound:            [4]float64{0, 0, 100, 100},
		Columns:          []string{"fare", "distance"},
	}
}

// saveFixture writes a pristine snapshot and returns its directory and
// the shards it holds.
func saveFixture(t *testing.T) (string, []snapshot.Shard, snapshot.Manifest) {
	t.Helper()
	shards := buildShards(t, 4000, 42)
	dir := filepath.Join(t.TempDir(), "test")
	m, err := snapshot.Save(dir, testManifest(shards), shards)
	if err != nil {
		t.Fatal(err)
	}
	return dir, shards, m
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir, shards, m := saveFixture(t)
	if m.FormatVersion != snapshot.FormatVersion {
		t.Fatalf("saved format version %d", m.FormatVersion)
	}
	if len(m.Shards) != len(shards) {
		t.Fatalf("manifest has %d shards, want %d", len(m.Shards), len(shards))
	}

	lm, loaded, err := snapshot.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lm.Dataset != "test" || lm.Level != 8 || lm.ShardLevel != 1 ||
		lm.CacheThreshold != 0.1 || lm.CacheAutoRefresh != 500 {
		t.Fatalf("manifest metadata lost: %+v", lm)
	}
	if len(loaded) != len(shards) {
		t.Fatalf("loaded %d shards, want %d", len(loaded), len(shards))
	}
	poly, err := geoblocks.NewPolygon([]geoblocks.Point{
		geoblocks.Pt(10, 10), geoblocks.Pt(90, 15), geoblocks.Pt(80, 85), geoblocks.Pt(15, 70),
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []geoblocks.AggRequest{geoblocks.Count(), geoblocks.Min("fare"), geoblocks.Max("fare"), geoblocks.Sum("fare")}
	for i := range shards {
		if loaded[i].Cell != shards[i].Cell {
			t.Fatalf("shard %d cell %v, want %v", i, loaded[i].Cell, shards[i].Cell)
		}
		want, err := shards[i].Block.Query(poly, reqs...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded[i].Block.Query(poly, reqs...)
		if err != nil {
			t.Fatal(err)
		}
		if want.Count != got.Count {
			t.Fatalf("shard %d count %d, want %d", i, got.Count, want.Count)
		}
		for v := range want.Values {
			// MIN/MAX and this fixture's SUM must survive bit-identically.
			if fmt.Sprint(want.Values[v]) != fmt.Sprint(got.Values[v]) {
				t.Fatalf("shard %d value[%d] %v, want %v", i, v, got.Values[v], want.Values[v])
			}
		}
	}
}

func TestSaveReplacesPreviousSnapshot(t *testing.T) {
	dir, shards, _ := saveFixture(t)
	// Second save with fewer shards must atomically replace the first.
	m2 := testManifest(shards)
	m2.Dataset = "test"
	if _, err := snapshot.Save(dir, m2, shards[:1]); err == nil {
		// shards[:1] has one level-1 cell: still a valid snapshot.
		lm, loaded, err := snapshot.Load(dir)
		if err != nil {
			t.Fatalf("replaced snapshot does not load: %v", err)
		}
		if len(lm.Shards) != 1 || len(loaded) != 1 {
			t.Fatalf("replacement not visible: %d manifest shards", len(lm.Shards))
		}
	} else {
		t.Fatal(err)
	}
	// No stray temp or backup directories left behind.
	entries, err := os.ReadDir(filepath.Dir(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(dir) {
			t.Fatalf("leftover entry %q next to snapshot", e.Name())
		}
	}
}

func TestLoadMissingSnapshotIsNotCorrupt(t *testing.T) {
	_, _, err := snapshot.Load(filepath.Join(t.TempDir(), "absent"))
	if err == nil {
		t.Fatal("loaded a nonexistent snapshot")
	}
	if errors.Is(err, snapshot.ErrCorrupt) || errors.Is(err, snapshot.ErrVersion) {
		t.Fatalf("missing snapshot reported as corrupt/version: %v", err)
	}
}

// rewriteManifest mutates the parsed manifest, rewrites manifest.json
// and recomputes the checksum sidecar — for corruption cases that must
// get past the sidecar check.
func rewriteManifest(t *testing.T, dir string, mutate func(m *map[string]any)) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, snapshot.ManifestFile))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	mutate(&m)
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(filepath.Join(dir, snapshot.ManifestFile), out, 0o644); err != nil {
		t.Fatal(err)
	}
	sum := fmt.Sprintf("%08x\n", core.CRC32C(out))
	if err := os.WriteFile(filepath.Join(dir, snapshot.ManifestChecksumFile), []byte(sum), 0o644); err != nil {
		t.Fatal(err)
	}
}

// patchFile applies mutate to the file's bytes in place.
func patchFile(t *testing.T, path string, mutate func([]byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func firstShard(m map[string]any) map[string]any {
	return m["shards"].([]any)[0].(map[string]any)
}

// TestLoadCorruption is the artifact corruption table: truncations,
// bit flips and version bumps of the manifest and the per-shard
// payloads, each asserting the typed error and that nothing loads.
func TestLoadCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
		wantErr error
	}{
		{"manifest truncated", func(t *testing.T, dir string) {
			patchFile(t, filepath.Join(dir, snapshot.ManifestFile), func(b []byte) []byte { return b[:len(b)/2] })
		}, snapshot.ErrCorrupt},
		{"manifest bit flip", func(t *testing.T, dir string) {
			patchFile(t, filepath.Join(dir, snapshot.ManifestFile), func(b []byte) []byte {
				b[len(b)/3] ^= 0x20
				return b
			})
		}, snapshot.ErrCorrupt},
		{"manifest version bumped", func(t *testing.T, dir string) {
			rewriteManifest(t, dir, func(m *map[string]any) { (*m)["format_version"] = 99 })
		}, snapshot.ErrVersion},
		{"manifest checksum sidecar missing", func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, snapshot.ManifestChecksumFile)); err != nil {
				t.Fatal(err)
			}
		}, snapshot.ErrCorrupt},
		{"manifest checksum sidecar garbage", func(t *testing.T, dir string) {
			patchFile(t, filepath.Join(dir, snapshot.ManifestChecksumFile), func([]byte) []byte { return []byte("zzzz\n") })
		}, snapshot.ErrCorrupt},
		{"manifest rows falsified", func(t *testing.T, dir string) {
			rewriteManifest(t, dir, func(m *map[string]any) {
				sh := firstShard(*m)
				sh["rows"] = sh["rows"].(float64) + 1
			})
		}, snapshot.ErrCorrupt},
		{"manifest crc falsified", func(t *testing.T, dir string) {
			rewriteManifest(t, dir, func(m *map[string]any) {
				sh := firstShard(*m)
				sh["crc32c"] = float64(uint32(sh["crc32c"].(float64)) ^ 1)
			})
		}, snapshot.ErrCorrupt},
		{"manifest shard order swapped", func(t *testing.T, dir string) {
			rewriteManifest(t, dir, func(m *map[string]any) {
				shards := (*m)["shards"].([]any)
				shards[0], shards[1] = shards[1], shards[0]
			})
		}, snapshot.ErrCorrupt},
		{"manifest unsafe shard file name", func(t *testing.T, dir string) {
			rewriteManifest(t, dir, func(m *map[string]any) {
				firstShard(*m)["file"] = "../escape.gbk"
			})
		}, snapshot.ErrCorrupt},
		{"shard file missing", func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, "shard-00000.gbk")); err != nil {
				t.Fatal(err)
			}
		}, snapshot.ErrCorrupt},
		{"shard file truncated", func(t *testing.T, dir string) {
			patchFile(t, filepath.Join(dir, "shard-00000.gbk"), func(b []byte) []byte { return b[:len(b)-8] })
		}, snapshot.ErrCorrupt},
		{"shard frame magic flipped", func(t *testing.T, dir string) {
			patchFile(t, filepath.Join(dir, "shard-00000.gbk"), func(b []byte) []byte {
				b[0] ^= 0xff
				return b
			})
		}, snapshot.ErrCorrupt},
		{"shard payload bit flip", func(t *testing.T, dir string) {
			patchFile(t, filepath.Join(dir, "shard-00000.gbk"), func(b []byte) []byte {
				b[len(b)/2] ^= 0x01
				return b
			})
		}, snapshot.ErrCorrupt},
		{"shard payload version bumped", func(t *testing.T, dir string) {
			patchFile(t, filepath.Join(dir, "shard-00000.gbk"), func(b []byte) []byte {
				// Payload version u32 sits at frame offset 16 (after frame
				// magic, length prefix and payload magic).
				binary.LittleEndian.PutUint32(b[16:20], 99)
				return b
			})
		}, snapshot.ErrVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, _, _ := saveFixture(t)
			tc.corrupt(t, dir)
			_, shards, err := snapshot.Load(dir)
			if err == nil {
				t.Fatal("corrupt snapshot loaded")
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("error %v, want %v", err, tc.wantErr)
			}
			if shards != nil {
				t.Fatal("corrupt load returned shards")
			}
		})
	}
}

func TestSaveValidation(t *testing.T) {
	shards := buildShards(t, 500, 7)
	dir := filepath.Join(t.TempDir(), "v")
	m := testManifest(shards)
	m.Dataset = ""
	if _, err := snapshot.Save(dir, m, shards); err == nil {
		t.Fatal("empty dataset name accepted")
	}
	m.Dataset = "v"
	if _, err := snapshot.Save(dir, m, nil); err == nil {
		t.Fatal("zero shards accepted")
	}
}

// TestSaveRefusesForeignDirectory pins the destructive-replace guard:
// Save must never move aside and delete a directory that is not a
// snapshot (it can be handed arbitrary paths via the HTTP endpoint).
func TestSaveRefusesForeignDirectory(t *testing.T) {
	shards := buildShards(t, 500, 3)
	dir := filepath.Join(t.TempDir(), "precious")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	keep := filepath.Join(dir, "keep.txt")
	if err := os.WriteFile(keep, []byte("irreplaceable"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Save(dir, testManifest(shards), shards); err == nil {
		t.Fatal("Save replaced a non-snapshot directory")
	}
	if data, err := os.ReadFile(keep); err != nil || string(data) != "irreplaceable" {
		t.Fatalf("foreign directory damaged: %q, %v", data, err)
	}

	// A plain file at the target is refused too.
	file := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Save(file, testManifest(shards), shards); err == nil {
		t.Fatal("Save replaced a regular file")
	}

	// An empty directory (operator-created target) is fine.
	empty := filepath.Join(t.TempDir(), "empty")
	if err := os.MkdirAll(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Save(empty, testManifest(shards), shards); err != nil {
		t.Fatalf("Save into empty directory: %v", err)
	}
}

// TestRecover pins the crash-remnant sweep: orphaned previous snapshots
// come back, superseded and staging leftovers go away.
func TestRecover(t *testing.T) {
	shards := buildShards(t, 500, 5)
	dataDir := t.TempDir()

	// Case 1: interrupted save — the previous snapshot was moved to
	// .snap-*.old and the new one never landed; the dataset dir is gone.
	if _, err := snapshot.Save(filepath.Join(dataDir, "orphan"), testManifest(shards), shards); err != nil {
		t.Fatal(err)
	}
	// testManifest names the dataset "test"; rewrite it to match the dir
	// name Recover will restore to.
	rewriteManifest(t, filepath.Join(dataDir, "orphan"), func(m *map[string]any) { (*m)["dataset"] = "orphan" })
	if err := os.Rename(filepath.Join(dataDir, "orphan"), filepath.Join(dataDir, ".snap-aaa.old")); err != nil {
		t.Fatal(err)
	}

	// Case 2: superseded — .old remnant whose current snapshot exists.
	m2 := testManifest(shards)
	m2.Dataset = "current"
	if _, err := snapshot.Save(filepath.Join(dataDir, "current"), m2, shards); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Save(filepath.Join(dataDir, ".snap-bbb.old"), m2, shards); err != nil {
		t.Fatal(err)
	}

	// Case 3: dead staging directory.
	if err := os.MkdirAll(filepath.Join(dataDir, ".snap-ccc"), 0o755); err != nil {
		t.Fatal(err)
	}

	actions, err := snapshot.Recover(dataDir)
	if err != nil {
		t.Fatalf("Recover: %v (%v)", err, actions)
	}
	if len(actions) != 3 {
		t.Fatalf("actions = %v, want 3", actions)
	}
	if _, _, err := snapshot.Load(filepath.Join(dataDir, "orphan")); err != nil {
		t.Fatalf("orphaned snapshot not recovered: %v", err)
	}
	for _, gone := range []string{".snap-aaa.old", ".snap-bbb.old", ".snap-ccc"} {
		if _, err := os.Stat(filepath.Join(dataDir, gone)); !os.IsNotExist(err) {
			t.Errorf("%s still present after Recover", gone)
		}
	}
	// Recover on a clean directory is a no-op.
	if actions, err := snapshot.Recover(dataDir); err != nil || len(actions) != 0 {
		t.Fatalf("second Recover = %v, %v", actions, err)
	}
}
