//go:build !unix

package mmapfile

import (
	"io"
	"os"
)

// openSized reads the file into memory: platforms without the unix mmap
// surface still get a working (if eager) open path.
func openSized(f *os.File, size int64) (*Mapping, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, err
	}
	return &Mapping{data: data}, nil
}

// Close releases the buffered copy.
func (m *Mapping) Close() error {
	m.data = nil
	return nil
}
