package mmapfile

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	want := bytes.Repeat([]byte("geoblocks v3 "), 1000)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != int64(len(want)) || !bytes.Equal(m.Data(), want) {
		t.Fatalf("mapped %d bytes, want %d (equal=%v)", m.Len(), len(want), bytes.Equal(m.Data(), want))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Data() != nil {
		t.Fatal("Data must be nil after Close")
	}
	if err := m.Close(); err != nil {
		t.Fatal("double Close must be a no-op")
	}
}

func TestOpenEmptyAndMissing(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(empty)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 || m.Mapped() {
		t.Fatalf("empty file: len=%d mapped=%v", m.Len(), m.Mapped())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file must error")
	}
}
