// Package mmapfile memory-maps read-only files for the snapshot v3 open
// path. On unix platforms Open mmaps the file (page-aligned, demand
// paged: bytes are not read until touched, which is what makes lazy shard
// faulting lazy); elsewhere it falls back to reading the file into
// memory, preserving the API at the cost of eager IO. The standard
// library's syscall mmap wrappers are used directly so the module keeps
// its zero-dependency footprint.
package mmapfile

import "os"

// Mapping is a read-only view of a file's bytes.
type Mapping struct {
	data   []byte
	mapped bool // true when backed by mmap rather than a heap copy
}

// Data returns the mapped bytes. The slice is valid until Close.
func (m *Mapping) Data() []byte { return m.data }

// Mapped reports whether the bytes are demand-paged (mmap) rather than a
// heap copy. Residency accounting treats heap copies as resident from
// the start.
func (m *Mapping) Mapped() bool { return m.mapped }

// Len returns the file length in bytes.
func (m *Mapping) Len() int64 { return int64(len(m.data)) }

// Open maps path read-only. Zero-length files yield an empty mapping.
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() == 0 {
		return &Mapping{}, nil
	}
	return openSized(f, st.Size())
}
