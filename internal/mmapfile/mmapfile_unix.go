//go:build unix

package mmapfile

import (
	"fmt"
	"os"
	"syscall"
)

func openSized(f *os.File, size int64) (*Mapping, error) {
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmapfile: %s is too large to map (%d bytes)", f.Name(), size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmapfile: mmap %s: %w", f.Name(), err)
	}
	return &Mapping{data: data, mapped: true}, nil
}

// Close releases the mapping. The Data slice must not be used afterwards.
func (m *Mapping) Close() error {
	if !m.mapped || m.data == nil {
		m.data = nil
		return nil
	}
	data := m.data
	m.data = nil
	m.mapped = false
	return syscall.Munmap(data)
}
