package baseline

import (
	"math"
	"math/rand"
	"testing"

	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/core"
	"geoblocks/internal/cover"
	"geoblocks/internal/geom"
)

func fixture(t testing.TB, n int, seed int64) (cellid.Domain, *column.Table) {
	t.Helper()
	dom := cellid.MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)})
	schema := column.NewSchema("a", "b")
	rng := rand.New(rand.NewSource(seed))
	tbl := column.NewTable(schema)
	for i := 0; i < n; i++ {
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		tbl.AppendRow(uint64(dom.FromPoint(p)), rng.Float64()*10, rng.NormFloat64())
	}
	tbl.SortByKey()
	return dom, tbl
}

func specs() []core.AggSpec {
	return []core.AggSpec{
		{Func: core.AggCount},
		{Col: 0, Func: core.AggSum},
		{Col: 0, Func: core.AggMin},
		{Col: 1, Func: core.AggMax},
		{Col: 1, Func: core.AggAvg},
	}
}

func approxEqual(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-9 || d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// bruteCovering aggregates rows in the covering by scanning every row.
func bruteCovering(tbl *column.Table, cov []cellid.ID, sp []core.AggSpec) core.Result {
	acc := NewRowAccumulator(sp)
	for i := 0; i < tbl.NumRows(); i++ {
		leaf := cellid.ID(tbl.Keys[i])
		for _, qc := range cov {
			if qc.Contains(leaf) {
				acc.AddRow(tbl, i)
				break
			}
		}
	}
	return acc.Result()
}

func TestBinarySearchMatchesBruteForce(t *testing.T) {
	dom, tbl := fixture(t, 20000, 1)
	bs := NewBinarySearch(tbl)
	poly := geom.NewPolygon([]geom.Point{
		geom.Pt(20, 30), geom.Pt(70, 25), geom.Pt(65, 75), geom.Pt(30, 70),
	})
	cov := cover.MustCoverer(dom, cover.DefaultOptions(11)).Cover(poly)

	got := bs.AggregateCovering(cov.Cells, specs())
	want := bruteCovering(tbl, cov.Cells, specs())
	if got.Count != want.Count || got.Count == 0 {
		t.Fatalf("count = %d, want %d (nonzero)", got.Count, want.Count)
	}
	for i := range got.Values {
		if !approxEqual(got.Values[i], want.Values[i]) {
			t.Fatalf("value %d = %g, want %g", i, got.Values[i], want.Values[i])
		}
	}
	if cnt := bs.CountCovering(cov.Cells); cnt != want.Count {
		t.Fatalf("CountCovering = %d, want %d", cnt, want.Count)
	}
}

func TestBinarySearchAgreesWithGeoBlock(t *testing.T) {
	dom, tbl := fixture(t, 20000, 2)
	bs := NewBinarySearch(tbl)
	base := &core.BaseData{Domain: dom, Table: tbl, PiggyLevel: -1}
	blk, err := core.Build(base, core.BuildOptions{Level: 12})
	if err != nil {
		t.Fatal(err)
	}
	poly := geom.RegularPolygon(geom.Pt(50, 50), 25, 6)
	cov := cover.MustCoverer(dom, cover.DefaultOptions(12)).Cover(poly)

	got := bs.AggregateCovering(cov.Cells, specs())
	want, err := blk.SelectCovering(cov.Cells, specs())
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != want.Count {
		t.Fatalf("count = %d, want %d", got.Count, want.Count)
	}
	for i := range got.Values {
		if !approxEqual(got.Values[i], want.Values[i]) {
			t.Fatalf("value %d = %g, want %g", i, got.Values[i], want.Values[i])
		}
	}
}

func TestBinarySearchPanicsOnUnsorted(t *testing.T) {
	_, tbl := fixture(t, 100, 3)
	tbl.Sorted = false
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unsorted table")
		}
	}()
	NewBinarySearch(tbl)
}

func TestRowAccumulatorEmpty(t *testing.T) {
	acc := NewRowAccumulator(specs())
	res := acc.Result()
	if res.Count != 0 {
		t.Fatal("empty accumulator has nonzero count")
	}
	if !math.IsNaN(res.Values[2]) || !math.IsNaN(res.Values[3]) || !math.IsNaN(res.Values[4]) {
		t.Fatalf("empty min/max/avg should be NaN, got %v", res.Values)
	}
	if res.Values[0] != 0 || res.Values[1] != 0 {
		t.Fatalf("empty count/sum should be 0, got %v", res.Values)
	}
}

func TestAddAggregateMatchesRowByRow(t *testing.T) {
	_, tbl := fixture(t, 1000, 4)
	// Fold rows one way via AddRow, the other via one AddAggregate record.
	a1 := NewRowAccumulator(specs())
	for i := 0; i < tbl.NumRows(); i++ {
		a1.AddRow(tbl, i)
	}
	want := a1.Result()

	count := uint64(tbl.NumRows())
	cols := make([]core.ColAggregate, 2)
	for c := range cols {
		cols[c] = core.ColAggregate{Min: math.Inf(1), Max: math.Inf(-1)}
		for i := 0; i < tbl.NumRows(); i++ {
			v := tbl.Cols[c][i]
			if v < cols[c].Min {
				cols[c].Min = v
			}
			if v > cols[c].Max {
				cols[c].Max = v
			}
			cols[c].Sum += v
		}
	}
	a2 := NewRowAccumulator(specs())
	a2.AddAggregate(count, cols)
	got := a2.Result()

	if got.Count != want.Count {
		t.Fatalf("count %d != %d", got.Count, want.Count)
	}
	for i := range got.Values {
		if !approxEqual(got.Values[i], want.Values[i]) {
			t.Fatalf("value %d: %g != %g", i, got.Values[i], want.Values[i])
		}
	}
}

func TestExactPolygonCount(t *testing.T) {
	dom, tbl := fixture(t, 10000, 5)
	// Half-domain rectangle as polygon: count should be ~half the rows.
	poly := geom.NewPolygon([]geom.Point{
		geom.Pt(0, 0), geom.Pt(50, 0), geom.Pt(50, 100), geom.Pt(0, 100),
	})
	got := ExactPolygonCount(tbl, dom, poly)
	if got < 4500 || got > 5500 {
		t.Fatalf("half-domain count = %d, want ~5000", got)
	}
	r := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(50, 100)}
	if rc := ExactRectCount(tbl, dom, r); rc != got {
		t.Fatalf("rect count %d != polygon count %d", rc, got)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); !approxEqual(got, 0.1) {
		t.Fatalf("RelativeError(110,100) = %g", got)
	}
	if got := RelativeError(90, 100); !approxEqual(got, 0.1) {
		t.Fatalf("RelativeError(90,100) = %g", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Fatalf("RelativeError(0,0) = %g", got)
	}
	if got := RelativeError(5, 0); !math.IsInf(got, 1) {
		t.Fatalf("RelativeError(5,0) = %g", got)
	}
}
