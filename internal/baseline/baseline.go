// Package baseline provides the on-the-fly aggregation baselines of the
// paper's evaluation (Sec. 4.1) and the shared machinery they use: a
// row-level accumulator over raw columnar data, the BinarySearch baseline,
// and exact ground-truth aggregation for error measurement.
package baseline

import (
	"math"

	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/core"
	"geoblocks/internal/geom"
)

// RowAccumulator folds raw rows into the requested aggregates. It is the
// on-the-fly counterpart of the GeoBlock cell-aggregate accumulator: every
// qualifying tuple is touched, which is exactly the cost the paper's
// baselines pay.
type RowAccumulator struct {
	specs []core.AggSpec
	count uint64
	vals  []float64
}

// NewRowAccumulator creates an accumulator for the given aggregates.
func NewRowAccumulator(specs []core.AggSpec) *RowAccumulator {
	vals := make([]float64, len(specs))
	for i, s := range specs {
		switch s.Func {
		case core.AggMin:
			vals[i] = math.Inf(1)
		case core.AggMax:
			vals[i] = math.Inf(-1)
		}
	}
	return &RowAccumulator{specs: specs, vals: vals}
}

// AddRow folds row i of t into the accumulator.
func (a *RowAccumulator) AddRow(t *column.Table, i int) {
	a.count++
	for k, s := range a.specs {
		switch s.Func {
		case core.AggCount:
		case core.AggSum, core.AggAvg:
			a.vals[k] += t.Cols[s.Col][i]
		case core.AggMin:
			if v := t.Cols[s.Col][i]; v < a.vals[k] {
				a.vals[k] = v
			}
		case core.AggMax:
			if v := t.Cols[s.Col][i]; v > a.vals[k] {
				a.vals[k] = v
			}
		}
	}
}

// AddAggregate folds a pre-combined aggregate record (count plus
// per-column min/max/sum) into the accumulator. The aR-tree baseline uses
// this to consume whole-node aggregates (paper Listing 3, case b).
func (a *RowAccumulator) AddAggregate(count uint64, cols []core.ColAggregate) {
	a.count += count
	for k, s := range a.specs {
		switch s.Func {
		case core.AggCount:
		case core.AggSum, core.AggAvg:
			a.vals[k] += cols[s.Col].Sum
		case core.AggMin:
			if v := cols[s.Col].Min; v < a.vals[k] {
				a.vals[k] = v
			}
		case core.AggMax:
			if v := cols[s.Col].Max; v > a.vals[k] {
				a.vals[k] = v
			}
		}
	}
}

// Count returns the number of rows folded so far.
func (a *RowAccumulator) Count() uint64 { return a.count }

// Result finalises the accumulator.
func (a *RowAccumulator) Result() core.Result {
	out := core.Result{Count: a.count, Values: make([]float64, len(a.specs))}
	for i, s := range a.specs {
		switch s.Func {
		case core.AggCount:
			out.Values[i] = float64(a.count)
		case core.AggSum:
			out.Values[i] = a.vals[i]
		case core.AggMin, core.AggMax:
			if a.count == 0 {
				out.Values[i] = math.NaN()
			} else {
				out.Values[i] = a.vals[i]
			}
		case core.AggAvg:
			if a.count == 0 {
				out.Values[i] = math.NaN()
			} else {
				out.Values[i] = a.vals[i] / float64(a.count)
			}
		}
	}
	return out
}

// BinarySearch is the simplest baseline (paper Sec. 4.1): no index at all.
// For each covering cell it binary-searches the sorted base data for the
// first and last contained raw tuple and aggregates everything in between
// on the fly.
type BinarySearch struct {
	table *column.Table
}

// NewBinarySearch wraps a sorted base table. It panics if the table is not
// sorted, as the search would silently return wrong ranges.
func NewBinarySearch(t *column.Table) *BinarySearch {
	if !t.Sorted {
		panic("baseline: BinarySearch requires sorted base data")
	}
	return &BinarySearch{table: t}
}

// Name identifies the baseline in experiment output.
func (b *BinarySearch) Name() string { return "BinarySearch" }

// SizeBytes returns the additional storage of the baseline beyond the base
// data — zero, which is why the paper omits it from the overhead chart.
func (b *BinarySearch) SizeBytes() int { return 0 }

// AggregateCovering aggregates all raw tuples whose leaf key falls inside
// the covering.
func (b *BinarySearch) AggregateCovering(cov []cellid.ID, specs []core.AggSpec) core.Result {
	acc := NewRowAccumulator(specs)
	for _, qc := range cov {
		lo := b.table.LowerBound(uint64(qc.RangeMin()))
		hi := uint64(qc.RangeMax())
		for i := lo; i < b.table.NumRows() && b.table.Keys[i] <= hi; i++ {
			acc.AddRow(b.table, i)
		}
	}
	return acc.Result()
}

// CountCovering counts tuples in the covering using two binary searches
// per covering cell — the fair COUNT counterpart.
func (b *BinarySearch) CountCovering(cov []cellid.ID) uint64 {
	var total uint64
	for _, qc := range cov {
		lo := b.table.LowerBound(uint64(qc.RangeMin()))
		hi := b.table.UpperBound(uint64(qc.RangeMax()))
		total += uint64(hi - lo)
	}
	return total
}

// ExactPolygonCount returns the exact number of base tuples whose location
// lies inside the polygon, reconstructing each tuple's location as its
// leaf-cell centre (sub-centimetre error at level 30). This is the
// denominator of the paper's relative-error metric (Sec. 4.2, Fig. 14).
func ExactPolygonCount(t *column.Table, dom cellid.Domain, poly *geom.Polygon) uint64 {
	var n uint64
	bb := poly.Bound()
	for i := 0; i < t.NumRows(); i++ {
		p := dom.CellCenter(cellid.ID(t.Keys[i]))
		if !bb.ContainsPoint(p) {
			continue
		}
		if poly.ContainsPoint(p) {
			n++
		}
	}
	return n
}

// distToSegment returns the distance from p to the segment [a, b].
func distToSegment(p, a, b geom.Point) float64 {
	ab := b.Sub(a)
	den := ab.Dot(ab)
	t := 0.0
	if den > 0 {
		t = p.Sub(a).Dot(ab) / den
	}
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist(a.Add(ab.Scale(t)))
}

// DistanceToPolygon returns 0 for points inside (or on the boundary of)
// the polygon, and otherwise the distance to the nearest ring segment.
func DistanceToPolygon(p geom.Point, poly *geom.Polygon) float64 {
	if poly.ContainsPoint(p) {
		return 0
	}
	best := math.Inf(1)
	measure := func(ring []geom.Point) {
		for i := range ring {
			j := i + 1
			if j == len(ring) {
				j = 0
			}
			if d := distToSegment(p, ring[i], ring[j]); d < best {
				best = d
			}
		}
	}
	measure(poly.Outer())
	for _, hole := range poly.Holes() {
		measure(hole)
	}
	return best
}

// ExactDilatedPolygonCount counts base tuples within margin of the
// polygon (tuples inside it included), reconstructing locations as
// leaf-cell centres like ExactPolygonCount. It is the upper reference of
// the query planner's guarantee: an error-bounded answer may add only
// tuples lying within its reported bound of the query region, so for any
// result with guaranteed bound e,
//
//	ExactPolygonCount <= result.Count <= ExactDilatedPolygonCount(…, e).
func ExactDilatedPolygonCount(t *column.Table, dom cellid.Domain, poly *geom.Polygon, margin float64) uint64 {
	bb := poly.Bound().Expanded(margin)
	var n uint64
	for i := 0; i < t.NumRows(); i++ {
		p := dom.CellCenter(cellid.ID(t.Keys[i]))
		if !bb.ContainsPoint(p) {
			continue
		}
		if DistanceToPolygon(p, poly) <= margin {
			n++
		}
	}
	return n
}

// ExactDilatedPolygonColSum is ExactDilatedPolygonCount for the sum of
// one value column: with margin 0 it is the exact in-polygon sum, the
// lower reference of the planner's guarantee for non-negative columns.
func ExactDilatedPolygonColSum(t *column.Table, dom cellid.Domain, poly *geom.Polygon, col int, margin float64) float64 {
	bb := poly.Bound().Expanded(margin)
	sum := 0.0
	for i := 0; i < t.NumRows(); i++ {
		p := dom.CellCenter(cellid.ID(t.Keys[i]))
		if !bb.ContainsPoint(p) {
			continue
		}
		if DistanceToPolygon(p, poly) <= margin {
			sum += t.Cols[col][i]
		}
	}
	return sum
}

// ExactRectCount is ExactPolygonCount for rectangles.
func ExactRectCount(t *column.Table, dom cellid.Domain, r geom.Rect) uint64 {
	var n uint64
	for i := 0; i < t.NumRows(); i++ {
		if r.ContainsPoint(dom.CellCenter(cellid.ID(t.Keys[i]))) {
			n++
		}
	}
	return n
}

// RelativeError computes the paper's error metric:
// |result − truth| / truth. It returns 0 when both are zero and +Inf when
// only the truth is zero.
func RelativeError(result, truth uint64) float64 {
	if truth == 0 {
		if result == 0 {
			return 0
		}
		return math.Inf(1)
	}
	diff := float64(result) - float64(truth)
	return math.Abs(diff) / float64(truth)
}
