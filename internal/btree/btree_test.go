package btree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"geoblocks/internal/baseline"
	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/core"
	"geoblocks/internal/cover"
	"geoblocks/internal/geom"
)

func TestInsertAndSeek(t *testing.T) {
	tr := &Tree{}
	keys := []uint64{50, 10, 90, 30, 70, 20, 80, 40, 60, 100}
	for i, k := range keys {
		tr.Insert(k, uint32(i))
	}
	if tr.Len() != len(keys) {
		t.Fatalf("len = %d", tr.Len())
	}
	// SeekGE on present and absent keys.
	row, ok := tr.SeekGE(30)
	if !ok || row != 3 {
		t.Fatalf("SeekGE(30) = %d,%t", row, ok)
	}
	// 31 -> first key >= 31 is 40, which was inserted as row 7.
	row, ok = tr.SeekGE(31)
	if !ok || row != 7 {
		t.Fatalf("SeekGE(31) = %d,%t, want 7", row, ok)
	}
	if _, ok := tr.SeekGE(101); ok {
		t.Fatal("SeekGE beyond max should fail")
	}
	row, ok = tr.SeekGE(0)
	if !ok || row != 1 { // smallest key 10 was inserted as row 1
		t.Fatalf("SeekGE(0) = %d,%t, want 1", row, ok)
	}
}

func TestManyInsertsSplitCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := &Tree{}
	const n = 50000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() % (n * 4)
	}
	// Insert in sorted order with row = position, mimicking index builds
	// over sorted base data.
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i, k := range keys {
		tr.Insert(k, uint32(i))
	}
	if tr.Height() < 2 {
		t.Fatalf("tree of %d entries has height %d", n, tr.Height())
	}
	// SeekGE must return the first row whose key >= probe for random probes.
	for trial := 0; trial < 2000; trial++ {
		probe := rng.Uint64() % (n * 4)
		want := sort.Search(n, func(i int) bool { return keys[i] >= probe })
		row, ok := tr.SeekGE(probe)
		if want == n {
			if ok {
				t.Fatalf("probe %d: expected miss, got row %d", probe, row)
			}
			continue
		}
		if !ok || int(row) != want {
			t.Fatalf("probe %d: row = %d,%t, want %d", probe, row, ok, want)
		}
	}
}

func TestQuickSeekMatchesSortSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 5000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() % 100000
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	tr := &Tree{}
	for i, k := range keys {
		tr.Insert(k, uint32(i))
	}
	f := func(probe uint32) bool {
		p := uint64(probe) % 110000
		want := sort.Search(n, func(i int) bool { return keys[i] >= p })
		row, ok := tr.SeekGE(p)
		if want == n {
			return !ok
		}
		return ok && int(row) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func fixtureIndex(t testing.TB, n int, seed int64) (cellid.Domain, *column.Table, *Index) {
	t.Helper()
	dom := cellid.MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)})
	schema := column.NewSchema("v")
	rng := rand.New(rand.NewSource(seed))
	tbl := column.NewTable(schema)
	for i := 0; i < n; i++ {
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		tbl.AppendRow(uint64(dom.FromPoint(p)), rng.Float64())
	}
	tbl.SortByKey()
	return dom, tbl, NewIndex(tbl)
}

func TestIndexAgreesWithBinarySearch(t *testing.T) {
	dom, tbl, ix := fixtureIndex(t, 20000, 3)
	bs := baseline.NewBinarySearch(tbl)
	poly := geom.RegularPolygon(geom.Pt(40, 60), 22, 5)
	cov := cover.MustCoverer(dom, cover.DefaultOptions(12)).Cover(poly)
	sp := []core.AggSpec{{Func: core.AggCount}, {Col: 0, Func: core.AggSum}, {Col: 0, Func: core.AggMin}}

	a := ix.AggregateCovering(cov.Cells, sp)
	b := bs.AggregateCovering(cov.Cells, sp)
	if a.Count != b.Count || a.Count == 0 {
		t.Fatalf("count %d != %d (nonzero)", a.Count, b.Count)
	}
	for i := range a.Values {
		if diff := math.Abs(a.Values[i] - b.Values[i]); diff > 1e-9 {
			t.Fatalf("value %d differs by %g", i, diff)
		}
	}
	if ca, cb := ix.CountCovering(cov.Cells), bs.CountCovering(cov.Cells); ca != cb {
		t.Fatalf("counts differ: %d vs %d", ca, cb)
	}
}

func TestSizeBytesPositiveAndProportional(t *testing.T) {
	_, _, small := fixtureIndex(t, 1000, 4)
	_, _, big := fixtureIndex(t, 10000, 5)
	if small.SizeBytes() <= 0 {
		t.Fatal("size must be positive")
	}
	if big.SizeBytes() <= small.SizeBytes() {
		t.Fatal("bigger index should take more space")
	}
	ratio := float64(big.SizeBytes()) / float64(small.SizeBytes())
	if ratio < 5 || ratio > 20 {
		t.Fatalf("size should grow roughly linearly, ratio = %g", ratio)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := &Tree{}
	if _, ok := tr.SeekGE(0); ok {
		t.Fatal("empty tree seek should fail")
	}
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatal("empty tree has entries")
	}
}

func TestDuplicateKeysPreserveRowOrder(t *testing.T) {
	tr := &Tree{}
	for i := 0; i < 200; i++ {
		tr.Insert(42, uint32(i))
	}
	row, ok := tr.SeekGE(42)
	if !ok || row != 0 {
		t.Fatalf("first duplicate = %d,%t, want 0", row, ok)
	}
	if _, ok := tr.SeekGE(43); ok {
		t.Fatal("no key >= 43 exists")
	}
}
