// Package btree implements an in-memory B+-tree keyed by 64-bit spatial
// keys, the secondary-index baseline of the paper's evaluation (Sec. 4.1,
// standing in for Google's cpp-btree). The tree maps each base-data row's
// spatial key to its row index; queries probe the tree for the first key of
// a covering cell's range and then scan the sorted raw data until no
// further tuple qualifies.
package btree

import (
	"sort"

	"geoblocks/internal/baseline"
	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/core"
)

// order is the maximum number of children per internal node. 64 keeps
// nodes around one cache line multiple, matching typical in-memory B-tree
// tuning.
const order = 64

// maxLeafEntries is the leaf capacity.
const maxLeafEntries = 64

type leaf struct {
	keys []uint64
	rows []uint32
	next *leaf
}

type internal struct {
	// keys[i] is the smallest key reachable via children[i+1].
	keys     []uint64
	children []interface{} // *internal or *leaf
}

// Tree is the B+-tree secondary index. Build it with New (bulk insert of a
// sorted table) or insert rows individually with Insert.
type Tree struct {
	root    interface{}
	height  int
	numKeys int
}

// New builds a tree over every row of the sorted base table by sequential
// insertion — the same indexing work the paper charges to the BTree
// baseline's build phase.
func New(t *column.Table) *Tree {
	tr := &Tree{}
	for i, k := range t.Keys {
		tr.Insert(k, uint32(i))
	}
	return tr
}

// Len returns the number of indexed entries.
func (t *Tree) Len() int { return t.numKeys }

// Height returns the tree height (1 = only a leaf).
func (t *Tree) Height() int { return t.height }

// Insert adds one (key, row) entry. Duplicate keys are kept; within a key,
// rows preserve insertion order.
func (t *Tree) Insert(key uint64, row uint32) {
	t.numKeys++
	if t.root == nil {
		t.root = &leaf{keys: []uint64{key}, rows: []uint32{row}}
		t.height = 1
		return
	}
	newChild, splitKey := t.insert(t.root, key, row)
	if newChild != nil {
		t.root = &internal{
			keys:     []uint64{splitKey},
			children: []interface{}{t.root, newChild},
		}
		t.height++
	}
}

// insert descends to the leaf, inserts, and propagates splits upward. It
// returns the new right sibling and its separator key when the node split.
func (t *Tree) insert(n interface{}, key uint64, row uint32) (interface{}, uint64) {
	switch node := n.(type) {
	case *leaf:
		idx := sort.Search(len(node.keys), func(i int) bool { return node.keys[i] > key })
		node.keys = append(node.keys, 0)
		copy(node.keys[idx+1:], node.keys[idx:])
		node.keys[idx] = key
		node.rows = append(node.rows, 0)
		copy(node.rows[idx+1:], node.rows[idx:])
		node.rows[idx] = row
		if len(node.keys) <= maxLeafEntries {
			return nil, 0
		}
		mid := len(node.keys) / 2
		right := &leaf{
			keys: append([]uint64(nil), node.keys[mid:]...),
			rows: append([]uint32(nil), node.rows[mid:]...),
			next: node.next,
		}
		node.keys = node.keys[:mid]
		node.rows = node.rows[:mid]
		node.next = right
		return right, right.keys[0]

	case *internal:
		idx := sort.Search(len(node.keys), func(i int) bool { return node.keys[i] > key })
		newChild, splitKey := t.insert(node.children[idx], key, row)
		if newChild == nil {
			return nil, 0
		}
		node.keys = append(node.keys, 0)
		copy(node.keys[idx+1:], node.keys[idx:])
		node.keys[idx] = splitKey
		node.children = append(node.children, nil)
		copy(node.children[idx+2:], node.children[idx+1:])
		node.children[idx+1] = newChild
		if len(node.children) <= order {
			return nil, 0
		}
		midKey := len(node.keys) / 2
		sep := node.keys[midKey]
		right := &internal{
			keys:     append([]uint64(nil), node.keys[midKey+1:]...),
			children: append([]interface{}(nil), node.children[midKey+1:]...),
		}
		node.keys = node.keys[:midKey]
		node.children = node.children[:midKey+1]
		return right, sep
	}
	panic("btree: unknown node type")
}

// SeekGE returns the row index of the first entry with key >= key, and
// false when no such entry exists.
func (t *Tree) SeekGE(key uint64) (uint32, bool) {
	n := t.root
	for {
		switch node := n.(type) {
		case nil:
			return 0, false
		case *internal:
			// Descend left of an equal separator: duplicates of the probe
			// key may live in the left subtree, and the leaf next-pointer
			// chain recovers from descending too far left.
			idx := sort.Search(len(node.keys), func(i int) bool { return node.keys[i] >= key })
			n = node.children[idx]
		case *leaf:
			idx := sort.Search(len(node.keys), func(i int) bool { return node.keys[i] >= key })
			if idx < len(node.keys) {
				return node.rows[idx], true
			}
			if node.next != nil && len(node.next.keys) > 0 {
				return node.next.rows[0], true
			}
			return 0, false
		default:
			return 0, false
		}
	}
}

// SizeBytes returns the index's memory footprint: per leaf entry 12 bytes
// (key + row) plus per node slice headers and per internal entry key +
// child pointer. This is the overhead plotted in paper Fig. 11b.
func (t *Tree) SizeBytes() int {
	size := 0
	var walk func(n interface{})
	walk = func(n interface{}) {
		switch node := n.(type) {
		case *leaf:
			size += 8*cap(node.keys) + 4*cap(node.rows) + 48 // slice headers + next
		case *internal:
			size += 8*cap(node.keys) + 16*cap(node.children) + 48
			for _, c := range node.children {
				walk(c)
			}
		}
	}
	walk(t.root)
	return size
}

// Index is the BTree baseline: the tree plus the sorted base data it
// indexes.
type Index struct {
	tree  *Tree
	table *column.Table
}

// NewIndex builds the baseline over a sorted base table.
func NewIndex(t *column.Table) *Index {
	if !t.Sorted {
		panic("btree: index requires sorted base data")
	}
	return &Index{tree: New(t), table: t}
}

// Name identifies the baseline in experiment output.
func (ix *Index) Name() string { return "BTree" }

// SizeBytes returns the index overhead beyond the base data.
func (ix *Index) SizeBytes() int { return ix.tree.SizeBytes() }

// Tree exposes the underlying B+-tree.
func (ix *Index) Tree() *Tree { return ix.tree }

// AggregateCovering probes the tree for the first tuple of each covering
// cell and scans the sorted raw data until the cell's key range is
// exhausted, aggregating on the fly (paper Sec. 4.1).
func (ix *Index) AggregateCovering(cov []cellid.ID, specs []core.AggSpec) core.Result {
	acc := baseline.NewRowAccumulator(specs)
	for _, qc := range cov {
		start, ok := ix.tree.SeekGE(uint64(qc.RangeMin()))
		if !ok {
			continue
		}
		hi := uint64(qc.RangeMax())
		for i := int(start); i < ix.table.NumRows() && ix.table.Keys[i] <= hi; i++ {
			acc.AddRow(ix.table, i)
		}
	}
	return acc.Result()
}

// CountCovering counts tuples per covering cell by seeking both range ends.
func (ix *Index) CountCovering(cov []cellid.ID) uint64 {
	var total uint64
	n := ix.table.NumRows()
	for _, qc := range cov {
		start, ok := ix.tree.SeekGE(uint64(qc.RangeMin()))
		if !ok {
			continue
		}
		end, ok := ix.tree.SeekGE(uint64(qc.RangeMax()) + 1)
		if !ok {
			end = uint32(n)
		}
		total += uint64(end - start)
	}
	return total
}
