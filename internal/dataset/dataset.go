// Package dataset generates the synthetic stand-ins for the paper's three
// evaluation datasets (Sec. 4.1): NYC yellow-cab trips, geotagged tweets
// from the contiguous US, and an OpenStreetMap extract of the Americas.
//
// The real datasets are not redistributable at reproduction time, so each
// generator reproduces the properties the evaluation actually exercises:
// heavy spatial skew from a small number of hotspots over a fixed bounding
// box, a realistic share of dirty rows for the extract phase to clean, and
// the paper's column sets (trip attributes for the taxi data, random
// integer payloads for tweets and OSM — the latter matching the paper
// exactly). Generation is fully deterministic per seed.
package dataset

import (
	"math/rand"

	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/core"
	"geoblocks/internal/geom"
)

// Hotspot is one Gaussian population centre.
type Hotspot struct {
	Center geom.Point
	// Sigma are the standard deviations in domain units.
	SigmaX, SigmaY float64
	// Weight is the relative share of points drawn from this hotspot.
	Weight float64
}

// Spec describes a synthetic dataset.
type Spec struct {
	Name   string
	Bound  geom.Rect
	Schema column.Schema
	// Hotspots carry the spatial skew; UniformFrac of points are instead
	// drawn uniformly over the bound (background noise).
	Hotspots    []Hotspot
	UniformFrac float64
	// DirtyFrac of points are corrupted: located outside the bound or
	// carrying out-of-range values, as in the raw TLC exports. The
	// extract phase's CleanRule removes them.
	DirtyFrac float64
	// fillRow writes one row's column values.
	fillRow func(rng *rand.Rand, vals []float64)
	// cleanRule is the dataset's extract-phase outlier rule.
	cleanRule func(bound geom.Rect, schema column.Schema) core.CleanRule
}

// Raw is generated point data before the extract phase.
type Raw struct {
	Spec   Spec
	Points []geom.Point
	Cols   [][]float64
}

// NumRows returns the number of generated rows.
func (r *Raw) NumRows() int { return len(r.Points) }

// Domain returns the dataset's cell domain.
func (r *Raw) Domain() cellid.Domain { return cellid.MustDomain(r.Spec.Bound) }

// CleanRule returns the extract-phase outlier rule for this dataset.
func (r *Raw) CleanRule() core.CleanRule {
	return r.Spec.cleanRule(r.Spec.Bound, r.Spec.Schema)
}

// Generate draws n rows from the spec, deterministically for a given seed.
func Generate(spec Spec, n int, seed int64) *Raw {
	rng := rand.New(rand.NewSource(seed))
	raw := &Raw{
		Spec:   spec,
		Points: make([]geom.Point, n),
		Cols:   make([][]float64, spec.Schema.NumCols()),
	}
	for c := range raw.Cols {
		raw.Cols[c] = make([]float64, n)
	}

	// Cumulative hotspot weights for sampling.
	totalW := 0.0
	for _, h := range spec.Hotspots {
		totalW += h.Weight
	}

	vals := make([]float64, spec.Schema.NumCols())
	for i := 0; i < n; i++ {
		p := spec.samplePoint(rng, totalW)
		if spec.DirtyFrac > 0 && rng.Float64() < spec.DirtyFrac {
			p = corruptPoint(rng, spec.Bound)
		}
		raw.Points[i] = p
		spec.fillRow(rng, vals)
		for c := range vals {
			raw.Cols[c][i] = vals[c]
		}
	}
	return raw
}

func (s Spec) samplePoint(rng *rand.Rand, totalW float64) geom.Point {
	if len(s.Hotspots) == 0 || rng.Float64() < s.UniformFrac {
		return geom.Pt(
			s.Bound.Min.X+rng.Float64()*s.Bound.Width(),
			s.Bound.Min.Y+rng.Float64()*s.Bound.Height(),
		)
	}
	// Pick a hotspot by weight.
	target := rng.Float64() * totalW
	idx := 0
	for i, h := range s.Hotspots {
		if target < h.Weight {
			idx = i
			break
		}
		target -= h.Weight
	}
	h := s.Hotspots[idx]
	for attempt := 0; attempt < 8; attempt++ {
		p := geom.Pt(
			h.Center.X+rng.NormFloat64()*h.SigmaX,
			h.Center.Y+rng.NormFloat64()*h.SigmaY,
		)
		if s.Bound.ContainsPoint(p) {
			return p
		}
	}
	// Gaussian tail escaped the domain repeatedly: clamp to the bound.
	p := geom.Pt(h.Center.X, h.Center.Y)
	return p
}

// corruptPoint produces the kinds of garbage coordinates found in raw trip
// data: null-island-style zeros or coordinates far outside the region.
func corruptPoint(rng *rand.Rand, bound geom.Rect) geom.Point {
	switch rng.Intn(3) {
	case 0:
		return geom.Pt(0, 0)
	case 1:
		return geom.Pt(bound.Min.X-10-rng.Float64()*50, bound.Min.Y-10-rng.Float64()*50)
	default:
		return geom.Pt(bound.Max.X+10+rng.Float64()*50, bound.Max.Y+10+rng.Float64()*50)
	}
}

// Extract runs the paper's extract phase on the raw data with the
// dataset's clean rule, returning sorted base data.
func (r *Raw) Extract(piggyLevel int) (*core.BaseData, core.ExtractStats, error) {
	return core.Extract(r.Domain(), r.Points, r.Spec.Schema, r.Cols, r.CleanRule(), piggyLevel)
}
