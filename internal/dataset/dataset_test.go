package dataset

import (
	"testing"

	"geoblocks/internal/geom"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(NYCTaxi(), 2000, 42)
	b := Generate(NYCTaxi(), 2000, 42)
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs between runs with same seed", i)
		}
	}
	for c := range a.Cols {
		for i := range a.Cols[c] {
			if a.Cols[c][i] != b.Cols[c][i] {
				t.Fatalf("col %d row %d differs", c, i)
			}
		}
	}
	c := Generate(NYCTaxi(), 2000, 43)
	same := 0
	for i := range a.Points {
		if a.Points[i] == c.Points[i] {
			same++
		}
	}
	if same > len(a.Points)/10 {
		t.Fatalf("different seeds produced %d identical points", same)
	}
}

func TestTaxiShape(t *testing.T) {
	raw := Generate(NYCTaxi(), 20000, 1)
	if raw.NumRows() != 20000 {
		t.Fatalf("rows = %d", raw.NumRows())
	}
	if got := len(raw.Cols); got != raw.Spec.Schema.NumCols() {
		t.Fatalf("cols = %d", got)
	}
	// Spatial skew: a Manhattan-sized box should hold a large share of
	// clean points.
	manhattan := geom.Rect{Min: geom.Pt(-74.03, 40.69), Max: geom.Pt(-73.92, 40.82)}
	inside, clean := 0, 0
	for _, p := range raw.Points {
		if raw.Spec.Bound.ContainsPoint(p) {
			clean++
			if manhattan.ContainsPoint(p) {
				inside++
			}
		}
	}
	frac := float64(inside) / float64(clean)
	if frac < 0.4 {
		t.Fatalf("Manhattan share = %.2f, want >= 0.4 (spatial skew missing)", frac)
	}
	// Dirty rows present but bounded.
	dirty := raw.NumRows() - clean
	if dirty == 0 {
		t.Fatal("no dirty rows generated")
	}
	if float64(dirty)/float64(raw.NumRows()) > 0.05 {
		t.Fatalf("dirty fraction %.3f too high", float64(dirty)/float64(raw.NumRows()))
	}
}

func TestTaxiColumnsPlausible(t *testing.T) {
	raw := Generate(NYCTaxi(), 10000, 2)
	s := raw.Spec.Schema
	fare := raw.Cols[s.ColIndex("fare_amount")]
	dist := raw.Cols[s.ColIndex("trip_distance")]
	pass := raw.Cols[s.ColIndex("passenger_count")]
	solo := 0
	for i := range fare {
		if fare[i] < 2.5 {
			t.Fatalf("fare %g below flagfall", fare[i])
		}
		if dist[i] <= 0 || dist[i] > 40 {
			t.Fatalf("distance %g out of range", dist[i])
		}
		if pass[i] < 1 || pass[i] > 6 {
			t.Fatalf("passengers %g out of range", pass[i])
		}
		if pass[i] == 1 {
			solo++
		}
	}
	// The paper's filter experiment relies on passenger_cnt == 1 having
	// ~70% selectivity.
	frac := float64(solo) / float64(len(pass))
	if frac < 0.6 || frac < 0.5 {
		t.Fatalf("solo fraction %.2f, want ~0.7", frac)
	}
}

func TestExtractCleansDirtyRows(t *testing.T) {
	raw := Generate(NYCTaxi(), 10000, 3)
	base, stats, err := raw.Extract(-1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowsKept >= stats.RowsIn {
		t.Fatalf("extract kept all %d rows; dirty rows not cleaned", stats.RowsIn)
	}
	if float64(stats.RowsKept) < 0.9*float64(stats.RowsIn) {
		t.Fatalf("extract dropped too much: kept %d of %d", stats.RowsKept, stats.RowsIn)
	}
	if !base.Table.Sorted {
		t.Fatal("base data not sorted")
	}
}

func TestTweetsAndOSMSpecs(t *testing.T) {
	for _, spec := range []Spec{USTweets(), OSMAmericas()} {
		raw := Generate(spec, 5000, 4)
		if raw.NumRows() != 5000 {
			t.Fatalf("%s: rows = %d", spec.Name, raw.NumRows())
		}
		base, _, err := raw.Extract(-1)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if base.NumRows() == 0 {
			t.Fatalf("%s: extract dropped everything", spec.Name)
		}
		// Integer payloads.
		for c := range raw.Cols {
			for i := 0; i < 100; i++ {
				v := raw.Cols[c][i]
				if v != float64(int64(v)) || v < 0 || v >= 1_000_000 {
					t.Fatalf("%s: col %d row %d = %g not an int payload", spec.Name, c, i, v)
				}
			}
		}
	}
}

func TestHotspotSamplingStaysInBound(t *testing.T) {
	spec := USTweets()
	raw := Generate(spec, 20000, 5)
	outOfBound := 0
	for _, p := range raw.Points {
		if !spec.Bound.ContainsPoint(p) {
			outOfBound++
		}
	}
	// Only dirty rows may leave the bound.
	if frac := float64(outOfBound) / float64(raw.NumRows()); frac > 3*spec.DirtyFrac+0.01 {
		t.Fatalf("out-of-bound fraction %.4f exceeds dirty budget", frac)
	}
}
