package dataset

import (
	"math"
	"math/rand"

	"geoblocks/internal/column"
	"geoblocks/internal/core"
	"geoblocks/internal/geom"
)

// NYCTaxi models the paper's primary dataset: yellow-cab trip records over
// the NYC bounding box with the TLC column set used in Fig. 1 and the
// filter experiments (fare_amount, trip_distance, tip_amount, tip_rate,
// passenger_count, pickup_hour). Hotspots follow the well-known pickup
// distribution: a dense Manhattan spine, secondary mass in Brooklyn/Queens,
// and the two airports — the skew the paper's Sec. 3.6 observations rely
// on. About 1.5% of rows are dirty (null-island or out-of-region
// coordinates), which the extract phase cleans.
func NYCTaxi() Spec {
	bound := geom.Rect{Min: geom.Pt(-74.30, 40.45), Max: geom.Pt(-73.65, 41.00)}
	return Spec{
		Name:   "nyc-taxi",
		Bound:  bound,
		Schema: column.NewSchema("fare_amount", "trip_distance", "tip_amount", "tip_rate", "passenger_count", "pickup_hour", "payment_type"),
		Hotspots: []Hotspot{
			// Manhattan spine (lower, mid, upper): the dense core covers
			// most of the island, as in the real pickup distribution.
			{Center: geom.Pt(-74.005, 40.72), SigmaX: 0.018, SigmaY: 0.025, Weight: 22},
			{Center: geom.Pt(-73.985, 40.75), SigmaX: 0.018, SigmaY: 0.025, Weight: 26},
			{Center: geom.Pt(-73.965, 40.78), SigmaX: 0.018, SigmaY: 0.025, Weight: 14},
			// Brooklyn / Williamsburg.
			{Center: geom.Pt(-73.95, 40.70), SigmaX: 0.040, SigmaY: 0.030, Weight: 8},
			// Queens / LIC.
			{Center: geom.Pt(-73.93, 40.745), SigmaX: 0.032, SigmaY: 0.024, Weight: 6},
			// JFK.
			{Center: geom.Pt(-73.78, 40.645), SigmaX: 0.008, SigmaY: 0.006, Weight: 5},
			// LaGuardia.
			{Center: geom.Pt(-73.87, 40.77), SigmaX: 0.006, SigmaY: 0.005, Weight: 4},
			// Bronx, sparse.
			{Center: geom.Pt(-73.90, 40.85), SigmaX: 0.045, SigmaY: 0.032, Weight: 3},
		},
		UniformFrac: 0.015,
		DirtyFrac:   0.015,
		fillRow:     fillTaxiRow,
		cleanRule:   taxiCleanRule,
	}
}

func fillTaxiRow(rng *rand.Rand, vals []float64) {
	// Distance: log-normal-ish, mostly short city trips.
	distance := math.Exp(rng.NormFloat64()*0.8+0.6) - 0.5
	if distance < 0.1 {
		distance = 0.1 + rng.Float64()*0.2
	}
	if distance > 40 {
		distance = 40
	}
	// Fare correlates with distance plus flagfall and noise.
	fare := 2.5 + distance*2.6 + rng.NormFloat64()*1.5
	if fare < 2.5 {
		fare = 2.5
	}
	// Tip: zero for ~35% (cash), else 10-30% of fare.
	tip := 0.0
	payment := 1.0 // card
	if rng.Float64() < 0.35 {
		payment = 2.0 // cash: tips unrecorded, as in the TLC data
	} else {
		tip = fare * (0.10 + rng.Float64()*0.20)
	}
	tipRate := tip / fare
	passengers := float64(1 + rng.Intn(6))
	if rng.Float64() < 0.70 {
		passengers = 1 // solo rides dominate (paper: selectivity ~70%)
	}
	hour := float64(rng.Intn(24))

	vals[0] = round2(fare)
	vals[1] = round2(distance)
	vals[2] = round2(tip)
	vals[3] = tipRate
	vals[4] = passengers
	vals[5] = hour
	vals[6] = payment
}

func round2(f float64) float64 { return math.Round(f*100) / 100 }

func taxiCleanRule(bound geom.Rect, schema column.Schema) core.CleanRule {
	return core.CleanRule{
		Bounds: bound,
		ColRanges: []core.ColRange{
			{Col: schema.ColIndex("fare_amount"), Min: 0.01, Max: 500},
			{Col: schema.ColIndex("trip_distance"), Min: 0.01, Max: 100},
			{Col: schema.ColIndex("passenger_count"), Min: 1, Max: 8},
		},
	}
}

// USTweets models the paper's second dataset: geotagged tweets from the
// contiguous US, queried with state polygons. Payload columns are random
// integers, exactly as in the paper ("randomly generated integer values as
// payload").
func USTweets() Spec {
	bound := geom.Rect{Min: geom.Pt(-125.0, 24.5), Max: geom.Pt(-66.5, 49.5)}
	cities := []struct {
		x, y, w float64
	}{
		{-74.0, 40.7, 16},  // NYC
		{-118.2, 34.1, 13}, // LA
		{-87.6, 41.9, 9},   // Chicago
		{-95.4, 29.8, 7},   // Houston
		{-75.2, 39.9, 5},   // Philadelphia
		{-112.1, 33.4, 4},  // Phoenix
		{-122.4, 37.8, 6},  // SF
		{-122.3, 47.6, 4},  // Seattle
		{-84.4, 33.7, 5},   // Atlanta
		{-80.2, 25.8, 6},   // Miami
		{-104.9, 39.7, 3},  // Denver
		{-90.2, 38.6, 2},   // St. Louis
		{-93.3, 44.9, 3},   // Minneapolis
		{-71.1, 42.3, 5},   // Boston
		{-77.0, 38.9, 5},   // DC
		{-97.7, 30.3, 3},   // Austin
		{-115.1, 36.2, 3},  // Las Vegas
		{-81.7, 41.5, 2},   // Cleveland
		{-86.8, 36.2, 2},   // Nashville
		{-117.2, 32.7, 4},  // San Diego
	}
	hs := make([]Hotspot, len(cities))
	for i, c := range cities {
		hs[i] = Hotspot{Center: geom.Pt(c.x, c.y), SigmaX: 0.5, SigmaY: 0.4, Weight: c.w}
	}
	return Spec{
		Name:        "us-tweets",
		Bound:       bound,
		Schema:      column.NewSchema("val0", "val1", "val2", "val3"),
		Hotspots:    hs,
		UniformFrac: 0.20,
		DirtyFrac:   0.005,
		fillRow:     fillIntPayload,
		cleanRule: func(bound geom.Rect, _ column.Schema) core.CleanRule {
			return core.CleanRule{Bounds: bound}
		},
	}
}

// OSMAmericas models the paper's third dataset: OpenStreetMap points
// across the Americas (389M in the paper; scaled here), with random
// integer payloads.
func OSMAmericas() Spec {
	bound := geom.Rect{Min: geom.Pt(-170.0, -56.0), Max: geom.Pt(-30.0, 72.0)}
	cities := []struct {
		x, y, w float64
	}{
		{-74.0, 40.7, 10},  // NYC
		{-99.1, 19.4, 9},   // Mexico City
		{-46.6, -23.5, 10}, // São Paulo
		{-58.4, -34.6, 7},  // Buenos Aires
		{-43.2, -22.9, 6},  // Rio
		{-77.0, -12.0, 4},  // Lima
		{-74.1, 4.7, 4},    // Bogotá
		{-79.4, 43.7, 5},   // Toronto
		{-123.1, 49.3, 3},  // Vancouver
		{-87.6, 41.9, 5},   // Chicago
		{-118.2, 34.1, 6},  // LA
		{-66.9, 10.5, 3},   // Caracas
		{-70.7, -33.5, 4},  // Santiago
		{-56.2, -34.9, 2},  // Montevideo
		{-90.5, 14.6, 2},   // Guatemala City
		{-82.4, 23.1, 2},   // Havana
		{-75.6, 45.4, 2},   // Ottawa
		{-97.5, 35.5, 2},   // Oklahoma
		{-80.2, 25.8, 4},   // Miami
		{-63.6, -38.4, 1},  // Pampas (sparse rural)
	}
	hs := make([]Hotspot, len(cities))
	for i, c := range cities {
		hs[i] = Hotspot{Center: geom.Pt(c.x, c.y), SigmaX: 1.2, SigmaY: 1.0, Weight: c.w}
	}
	return Spec{
		Name:        "osm-americas",
		Bound:       bound,
		Schema:      column.NewSchema("val0", "val1", "val2", "val3"),
		Hotspots:    hs,
		UniformFrac: 0.35, // OSM has much more rural coverage than tweets
		DirtyFrac:   0.002,
		fillRow:     fillIntPayload,
		cleanRule: func(bound geom.Rect, _ column.Schema) core.CleanRule {
			return core.CleanRule{Bounds: bound}
		},
	}
}

func fillIntPayload(rng *rand.Rand, vals []float64) {
	for i := range vals {
		vals[i] = float64(rng.Intn(1_000_000))
	}
}
