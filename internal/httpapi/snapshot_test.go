package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"geoblocks/internal/snapshot"
)

// snapshotServer is a handler over testStore with a data dir configured.
func snapshotServer(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	dataDir := t.TempDir()
	_, h := newServer(testStore(t), Config{DataDir: dataDir})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, dataDir
}

func TestSnapshotEndpointRoundTrip(t *testing.T) {
	ts, dataDir := snapshotServer(t)

	// Baseline answer before any snapshotting.
	_, wantBody := postJSON(t, ts, "/v1/query", taxiRect)

	// Snapshot to the default <data-dir>/taxi (empty body).
	resp, body := postJSON(t, ts, "/v1/datasets/taxi/snapshot", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", resp.StatusCode, body)
	}
	var sr snapshotResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Dataset != "taxi" || sr.Shards < 2 || sr.Bytes <= 0 || sr.FormatVersion != snapshot.FormatVersion {
		t.Fatalf("snapshot response %+v", sr)
	}
	if sr.Path != filepath.Join(dataDir, "taxi") {
		t.Fatalf("snapshot path %q", sr.Path)
	}
	if _, err := os.Stat(filepath.Join(sr.Path, snapshot.ManifestFile)); err != nil {
		t.Fatalf("manifest not on disk: %v", err)
	}

	// Create-from-snapshot under a new name, then query both: answers
	// must be byte-identical (the response JSON embeds every aggregate).
	resp, body = postJSON(t, ts, "/v1/datasets",
		fmt.Sprintf(`{"name":"taxi2","source":"snapshot","path":%q}`, sr.Path))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create-from-snapshot status %d: %s", resp.StatusCode, body)
	}
	_, gotBody := postJSON(t, ts, "/v1/query",
		`{"dataset":"taxi2","rect":[-74.05,40.60,-73.85,40.85],"aggs":[{"func":"count"},{"func":"sum","col":"fare_amount"}]}`)
	var want, got struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(wantBody, &want); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(gotBody, &got); err != nil {
		t.Fatal(err)
	}
	if string(want.Result) != string(got.Result) {
		t.Fatalf("restored dataset answers differently:\n%s\nvs\n%s", want.Result, got.Result)
	}

	// A second restore of the same artifact under another name also
	// works: snapshots are immutable, shareable artifacts.
	resp, body = postJSON(t, ts, "/v1/datasets", `{"name":"taxi3","source":"snapshot","path":"`+sr.Path+`"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("second restore status %d: %s", resp.StatusCode, body)
	}
}

func TestSnapshotEndpointErrors(t *testing.T) {
	ts, dataDir := snapshotServer(t)

	resp, _ := postJSON(t, ts, "/v1/datasets/nope/snapshot", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset snapshot status %d", resp.StatusCode)
	}

	// No data dir and no path: 400.
	_, hNoDir := newServer(testStore(t), Config{})
	tsNoDir := httptest.NewServer(hNoDir)
	defer tsNoDir.Close()
	resp, body := postJSON(t, tsNoDir, "/v1/datasets/taxi/snapshot", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no-data-dir snapshot status %d: %s", resp.StatusCode, body)
	}

	// Create from a missing snapshot path: 400; from a corrupt one: 422.
	resp, _ = postJSON(t, ts, "/v1/datasets", `{"name":"m","source":"snapshot","path":"`+filepath.Join(dataDir, "absent")+`"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing snapshot create status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts, "/v1/datasets/taxi/snapshot", ""); resp.StatusCode != http.StatusOK {
		t.Fatal("snapshot failed")
	}
	path := filepath.Join(dataDir, "taxi", "shard-00000.gbk")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts, "/v1/datasets", `{"name":"c","source":"snapshot","path":"`+filepath.Join(dataDir, "taxi")+`"}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt snapshot create status %d: %s", resp.StatusCode, body)
	}
	// Nothing partially registered.
	resp, body = getJSON(t, ts, "/v1/datasets")
	if resp.StatusCode != http.StatusOK {
		t.Fatal("list failed")
	}
	var dl datasetsResponse
	if err := json.Unmarshal(body, &dl); err != nil {
		t.Fatal(err)
	}
	if len(dl.Datasets) != 1 || dl.Datasets[0].Name != "taxi" {
		t.Fatalf("registry polluted: %s", body)
	}

	// Bad source value.
	resp, _ = postJSON(t, ts, "/v1/datasets", `{"name":"x","source":"carrier-pigeon"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad source status %d", resp.StatusCode)
	}
}

func TestDeletePurge(t *testing.T) {
	ts, dataDir := snapshotServer(t)
	if resp, _ := postJSON(t, ts, "/v1/datasets/taxi/snapshot", ""); resp.StatusCode != http.StatusOK {
		t.Fatal("snapshot failed")
	}
	snapDir := filepath.Join(dataDir, "taxi")

	// Plain DELETE leaves the snapshot on disk.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/taxi", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if _, err := os.Stat(snapDir); err != nil {
		t.Fatalf("plain DELETE touched disk: %v", err)
	}

	// Restore it, then DELETE ?purge=1 removes the snapshot too.
	if resp, body := postJSON(t, ts, "/v1/datasets", `{"name":"taxi","source":"snapshot"}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("restore status %d: %s", resp.StatusCode, body)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/taxi?purge=1", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("purge delete status %d", resp.StatusCode)
	}
	if _, err := os.Stat(snapDir); !os.IsNotExist(err) {
		t.Fatalf("purge left snapshot behind (err=%v)", err)
	}
}

func TestDeletePurgeWithoutDataDir(t *testing.T) {
	_, h := newServer(testStore(t), Config{})
	ts := httptest.NewServer(h)
	defer ts.Close()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/taxi?purge=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("purge without data dir status %d", resp.StatusCode)
	}
	// The rejected purge must not have dropped the dataset either.
	if resp, _ := getJSON(t, ts, "/v1/stats?dataset=taxi"); resp.StatusCode != http.StatusOK {
		t.Fatal("dataset was dropped by a rejected purge")
	}
}

func TestCreateRejectsUnsafeNames(t *testing.T) {
	ts, _ := snapshotServer(t)
	for _, name := range []string{"../evil", "a/b", ".hidden", "..", "sp ace"} {
		body := fmt.Sprintf(`{"name":%q,"spec":"taxi","rows":100}`, name)
		resp, _ := postJSON(t, ts, "/v1/datasets", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("name %q accepted with status %d", name, resp.StatusCode)
		}
	}
}

func TestValidDatasetName(t *testing.T) {
	for _, ok := range []string{"taxi", "tweets-hot", "a.b_c-9", "X"} {
		if !ValidDatasetName(ok) {
			t.Errorf("ValidDatasetName(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", ".", "..", ".x", "a/b", "a\\b", "a b", "ü"} {
		if ValidDatasetName(bad) {
			t.Errorf("ValidDatasetName(%q) = true", bad)
		}
	}
}

// TestPurgeConflictsWithInFlightSnapshot pins the purge/snapshot
// reservation: while a snapshot of the dataset is in flight, a purge
// must be refused (409) without dropping the dataset.
func TestPurgeConflictsWithInFlightSnapshot(t *testing.T) {
	dataDir := t.TempDir()
	s, h := newServer(testStore(t), Config{DataDir: dataDir})
	ts := httptest.NewServer(h)
	defer ts.Close()

	s.snapshotting.Store("taxi", struct{}{}) // simulate an in-flight snapshot
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/taxi?purge=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("purge during snapshot status %d, want 409", resp.StatusCode)
	}
	if _, ok := s.store.Get("taxi"); !ok {
		t.Fatal("refused purge dropped the dataset")
	}

	s.snapshotting.Delete("taxi")
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/taxi?purge=1", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("purge after snapshot finished status %d", resp.StatusCode)
	}
}
