package httpapi

// HTTP-surface tests of the streaming write path: the success forms
// (JSON object with and without a column permutation, NDJSON, explicit
// compact), the malformed-ingest table — every rejection a typed 4xx
// with nothing partially applied — and the ingest/compaction metrics
// series.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// taxiCount returns a dataset's full-bound COUNT through the query
// endpoint — the observer for the nothing-partially-applied checks.
func taxiCount(t *testing.T, ts *httptest.Server, name string) uint64 {
	t.Helper()
	q := fmt.Sprintf(`{"dataset":%q,"rect":[-74.30,40.45,-73.65,41.00],"aggs":[{"func":"count"}]}`, name)
	resp, body := postJSON(t, ts, "/v1/query", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("count query status %d: %s", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil || qr.Result == nil {
		t.Fatalf("count query: %v (%s)", err, body)
	}
	return qr.Result.Count
}

// postBody POSTs with an explicit content type.
func postBody(t *testing.T, ts *httptest.Server, path, contentType, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

// Two in-bound taxi rows in schema order (fare_amount, trip_distance,
// tip_amount, tip_rate, passenger_count, pickup_hour, payment_type).
const taxiRow1 = `[-73.98, 40.75, 12.5, 3.1, 2.0, 0.16, 1, 14, 1]`
const taxiRow2 = `[-73.95, 40.70, 8.0, 1.2, 0.0, 0.0, 1, 9, 2]`

func TestIngestEndpoint(t *testing.T) {
	_, h := newServer(testStore(t), Config{})
	ts := httptest.NewServer(h)
	defer ts.Close()
	base := taxiCount(t, ts, "taxi")

	t.Run("json schema order", func(t *testing.T) {
		resp, body := postJSON(t, ts, "/v1/datasets/taxi/rows",
			fmt.Sprintf(`{"rows":[%s,%s]}`, taxiRow1, taxiRow2))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var ir ingestResponse
		if err := json.Unmarshal(body, &ir); err != nil {
			t.Fatal(err)
		}
		if ir.Rows != 2 || ir.Seq == 0 || ir.DeltaRows < 2 {
			t.Fatalf("unexpected ack: %s", body)
		}
		if got := taxiCount(t, ts, "taxi"); got != base+2 {
			t.Fatalf("count %d, want %d", got, base+2)
		}
	})

	t.Run("json column permutation", func(t *testing.T) {
		before := taxiCount(t, ts, "taxi")
		// Values reordered to match the named permutation.
		req := `{"columns":["pickup_hour","fare_amount","trip_distance","tip_amount","tip_rate","passenger_count","payment_type"],
			"rows":[[-73.97, 40.76, 14, 12.5, 3.1, 2.0, 0.16, 1, 1]]}`
		resp, body := postJSON(t, ts, "/v1/datasets/taxi/rows", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if got := taxiCount(t, ts, "taxi"); got != before+1 {
			t.Fatalf("count %d, want %d", got, before+1)
		}
		// The permuted row must land in the named columns: its pickup_hour
		// 14 contributes to SUM(pickup_hour) exactly.
		q := `{"dataset":"taxi","rect":[-73.971,40.759,-73.969,40.761],"aggs":[{"func":"sum","col":"pickup_hour"}]}`
		respQ, bodyQ := postJSON(t, ts, "/v1/query", q)
		if respQ.StatusCode != http.StatusOK {
			t.Fatalf("query status %d: %s", respQ.StatusCode, bodyQ)
		}
	})

	t.Run("ndjson", func(t *testing.T) {
		before := taxiCount(t, ts, "taxi")
		body := taxiRow1 + "\n\n" + taxiRow2 + "\n"
		resp, data := postBody(t, ts, "/v1/datasets/taxi/rows", "application/x-ndjson", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var ir ingestResponse
		if err := json.Unmarshal(data, &ir); err != nil {
			t.Fatal(err)
		}
		if ir.Rows != 2 {
			t.Fatalf("ndjson ack rows = %d, want 2 (blank lines skipped): %s", ir.Rows, data)
		}
		if got := taxiCount(t, ts, "taxi"); got != before+2 {
			t.Fatalf("count %d, want %d", got, before+2)
		}
	})

	t.Run("compact", func(t *testing.T) {
		before := taxiCount(t, ts, "taxi")
		resp, body := postJSON(t, ts, "/v1/datasets/taxi/compact", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var cr struct {
			Dataset string `json:"dataset"`
			Rows    int    `json:"rows"`
		}
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		if cr.Dataset != "taxi" || cr.Rows != 5 {
			t.Fatalf("compact folded %d rows, want the 5 ingested: %s", cr.Rows, body)
		}
		if got := taxiCount(t, ts, "taxi"); got != before {
			t.Fatalf("compaction changed the count: %d -> %d", before, got)
		}
		resp, _ = getJSON(t, ts, "/v1/stats?dataset=taxi")
		if resp.StatusCode != http.StatusOK {
			t.Fatal("stats after compact")
		}
	})

	t.Run("metrics", func(t *testing.T) {
		resp, body := getJSON(t, ts, "/metrics")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics status %d", resp.StatusCode)
		}
		text := string(body)
		for _, want := range []string{
			`geoblocks_ingest_rows_total{dataset="taxi"} 5`,
			`geoblocks_ingest_batches_total{dataset="taxi"} 3`,
			`geoblocks_ingest_delta_rows{dataset="taxi"} 0`,
			`geoblocks_compactions_total{dataset="taxi"} 1`,
			`geoblocks_compacted_rows_total{dataset="taxi"} 5`,
			`geoblocksd_ingested_rows_total 5`,
			`geoblocksd_requests_total{endpoint="ingest"}`,
		} {
			if !strings.Contains(text, want) {
				t.Errorf("metrics output missing %q", want)
			}
		}
	})
}

// TestIngestErrors is the malformed-ingest table: every rejection must
// carry its typed status and leave the dataset untouched — the count
// observed through the query endpoint never moves.
func TestIngestErrors(t *testing.T) {
	st := testStore(t)
	_, h := newServer(st, Config{})
	ts := httptest.NewServer(h)
	defer ts.Close()
	base := taxiCount(t, ts, "taxi")

	bigBatch := func() string {
		var b strings.Builder
		b.WriteString(`{"rows":[`)
		for i := 0; i <= maxIngestRows; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(taxiRow1)
		}
		b.WriteString(`]}`)
		return b.String()
	}

	cases := []struct {
		name        string
		path        string
		contentType string
		body        string
		want        int
	}{
		{"malformed json", "/v1/datasets/taxi/rows", "application/json", `{"rows": [[1,2`, http.StatusBadRequest},
		{"missing rows", "/v1/datasets/taxi/rows", "application/json", `{}`, http.StatusBadRequest},
		{"empty rows", "/v1/datasets/taxi/rows", "application/json", `{"rows":[]}`, http.StatusBadRequest},
		{"ragged row", "/v1/datasets/taxi/rows", "application/json",
			`{"rows":[[-73.98, 40.75, 12.5]]}`, http.StatusBadRequest},
		{"unknown column", "/v1/datasets/taxi/rows", "application/json",
			`{"columns":["fare_amount","trip_distance","tip_amount","tip_rate","passenger_count","pickup_hour","surge_fee"],"rows":[` + taxiRow1 + `]}`,
			http.StatusBadRequest},
		{"short column list", "/v1/datasets/taxi/rows", "application/json",
			`{"columns":["fare_amount"],"rows":[[-73.98, 40.75, 12.5]]}`, http.StatusBadRequest},
		{"duplicate column", "/v1/datasets/taxi/rows", "application/json",
			`{"columns":["fare_amount","fare_amount","tip_amount","tip_rate","passenger_count","pickup_hour","payment_type"],"rows":[` + taxiRow1 + `]}`,
			http.StatusBadRequest},
		{"nan literal", "/v1/datasets/taxi/rows", "application/json",
			`{"rows":[[-73.98, 40.75, NaN, 3.1, 2.0, 0.16, 1, 14, 1]]}`, http.StatusBadRequest},
		{"inf literal", "/v1/datasets/taxi/rows", "application/json",
			`{"rows":[[-73.98, 40.75, 1e999, 3.1, 2.0, 0.16, 1, 14, 1]]}`, http.StatusBadRequest},
		{"out of bounds", "/v1/datasets/taxi/rows", "application/json",
			fmt.Sprintf(`{"rows":[%s,[0.0, 0.0, 1, 1, 1, 1, 1, 1, 1]]}`, taxiRow1), http.StatusUnprocessableEntity},
		{"oversized batch", "/v1/datasets/taxi/rows", "application/json", bigBatch(), http.StatusRequestEntityTooLarge},
		{"unknown dataset", "/v1/datasets/nope/rows", "application/json",
			`{"rows":[` + taxiRow1 + `]}`, http.StatusNotFound},
		{"truncated ndjson", "/v1/datasets/taxi/rows", "application/x-ndjson",
			taxiRow1 + "\n[-73.98, 40.75, 12.5", http.StatusBadRequest},
		{"ragged ndjson", "/v1/datasets/taxi/rows", "application/x-ndjson",
			taxiRow1 + "\n[-73.98, 40.75]\n", http.StatusBadRequest},
		{"ndjson non-array line", "/v1/datasets/taxi/rows", "application/x-ndjson",
			`{"rows": "not an array"}`, http.StatusBadRequest},
		{"empty ndjson", "/v1/datasets/taxi/rows", "application/x-ndjson", "\n\n", http.StatusBadRequest},
		{"compact unknown dataset", "/v1/datasets/nope/compact", "application/json", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postBody(t, ts, tc.path, tc.contentType, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.want, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("rejection carries no error payload: %s", body)
			}
			if got := taxiCount(t, ts, "taxi"); got != base {
				t.Fatalf("rejected ingest applied rows: count %d, want %d", got, base)
			}
		})
	}

	t.Run("backpressure", func(t *testing.T) {
		d, ok := st.Get("taxi")
		if !ok {
			t.Fatal("taxi missing")
		}
		d.SetDeltaMaxRows(1)
		defer d.SetDeltaMaxRows(0)
		resp, body := postJSON(t, ts, "/v1/datasets/taxi/rows",
			fmt.Sprintf(`{"rows":[%s,%s]}`, taxiRow1, taxiRow2))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("503 without Retry-After")
		}
		if got := taxiCount(t, ts, "taxi"); got != base {
			t.Fatalf("backpressured ingest applied rows: count %d, want %d", got, base)
		}
	})
}

// TestIngestMappedDataset pins the serving-tier read-only contract: rows
// and compact against a mapped (mmap-served) dataset answer 409, and the
// mapped data stays untouched.
func TestIngestMappedDataset(t *testing.T) {
	st := testStore(t)
	st.EnableMmap(0)
	dataDir := t.TempDir()
	_, h := newServer(st, Config{DataDir: dataDir, SnapshotV3: true})
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, body := postJSON(t, ts, "/v1/datasets/taxi/snapshot", `{}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts, "/v1/datasets",
		`{"name":"taxi-mapped","source":"snapshot","path":"`+dataDir+`/taxi"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create from snapshot status %d: %s", resp.StatusCode, body)
	}
	base := taxiCount(t, ts, "taxi-mapped")

	resp, body = postJSON(t, ts, "/v1/datasets/taxi-mapped/rows", `{"rows":[`+taxiRow1+`]}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("ingest into mapped: status %d, want 409: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts, "/v1/datasets/taxi-mapped/compact", "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("compact of mapped: status %d, want 409: %s", resp.StatusCode, body)
	}
	if got := taxiCount(t, ts, "taxi-mapped"); got != base {
		t.Fatalf("mapped dataset mutated: count %d -> %d", base, got)
	}
}
