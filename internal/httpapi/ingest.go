package httpapi

// Streaming ingest endpoints:
//
//	POST /v1/datasets/{name}/rows    — append a batch of rows
//	POST /v1/datasets/{name}/compact — fold pending rows into the base
//
// The rows endpoint accepts two encodings. The default is a JSON object
// {"columns": [...], "rows": [[x, y, v...], ...]} where the optional
// columns array names the order of the per-row values (omitted = schema
// order). With a Content-Type containing "ndjson", the body is one JSON
// array per line, [x, y, v...] in schema order — the natural shape for
// piping a row stream through curl.
//
// Ingest is all-or-nothing: the whole batch is parsed and validated
// before the store sees it, and the store validates again before applying
// anything, so a 4xx/5xx response means no row of the batch was applied
// (and none was logged). A 200 means the batch is visible to subsequent
// queries and — when the daemon runs with a data dir — fsynced to the
// dataset's write-ahead log.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"geoblocks"
	"geoblocks/internal/geom"
	"geoblocks/internal/store"
)

// maxIngestRows caps one ingest batch: bigger streams should be split
// into batches (each batch is one WAL fsync, so very large batches also
// hold the ingest lock longer than necessary).
const maxIngestRows = 100_000

// maxIngestBodyBytes caps the rows endpoint's body independently of the
// (smaller) general POST cap: 100k NDJSON rows of a few columns fit
// comfortably.
const maxIngestBodyBytes = 32 << 20

// ingestRequest is the JSON-object form of the rows endpoint body.
type ingestRequest struct {
	// Columns optionally names the value order of each row's tail
	// (positions after x and y). Must be a permutation of the dataset
	// schema when present.
	Columns []string `json:"columns,omitempty"`
	// Rows are [x, y, v...] tuples.
	Rows [][]float64 `json:"rows"`
}

// ingestResponse acknowledges an applied batch.
type ingestResponse struct {
	Dataset string `json:"dataset"`
	Rows    int    `json:"rows"`
	// Seq is the batch's ingest sequence number: after a restart, a
	// sequence at or below the dataset's ingest_seq is guaranteed
	// replayed or folded.
	Seq uint64 `json:"seq"`
	// DeltaRows is the dataset's pending (unfolded) row count after this
	// batch — a growing value means the compactor is behind.
	DeltaRows int64 `json:"delta_rows"`
	ElapsedUS int64 `json:"elapsed_us"`
}

// columnPerm resolves an optional column-name list into value-position →
// schema-index, validating it is a full permutation of the schema.
func columnPerm(schema geoblocks.Schema, names []string) ([]int, error) {
	if len(names) == 0 {
		perm := make([]int, schema.NumCols())
		for i := range perm {
			perm[i] = i
		}
		return perm, nil
	}
	if len(names) != schema.NumCols() {
		return nil, fmt.Errorf("columns lists %d names, schema has %d (%s)",
			len(names), schema.NumCols(), strings.Join(schema.Names, ", "))
	}
	perm := make([]int, len(names))
	seen := make(map[int]bool, len(names))
	for i, name := range names {
		idx := -1
		for c, n := range schema.Names {
			if n == name {
				idx = c
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("unknown column %q (schema: %s)", name, strings.Join(schema.Names, ", "))
		}
		if seen[idx] {
			return nil, fmt.Errorf("duplicate column %q", name)
		}
		seen[idx] = true
		perm[i] = idx
	}
	return perm, nil
}

// appendRow validates one [x, y, v...] tuple and appends it to the batch
// under construction.
func appendRow(row []float64, perm []int, pts *[]geom.Point, cols [][]float64, rowIdx int) error {
	if len(row) != 2+len(perm) {
		return fmt.Errorf("row %d has %d values, want %d (x, y, %d columns)", rowIdx, len(row), 2+len(perm), len(perm))
	}
	*pts = append(*pts, geom.Pt(row[0], row[1]))
	for i, c := range perm {
		cols[c] = append(cols[c], row[2+i])
	}
	return nil
}

// parseIngestJSON decodes the JSON-object body form.
func parseIngestJSON(r *http.Request, schema geoblocks.Schema) ([]geom.Point, [][]float64, int, error) {
	var req ingestRequest
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("malformed request body: %v", err)
	}
	if len(req.Rows) == 0 {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("missing rows")
	}
	if len(req.Rows) > maxIngestRows {
		return nil, nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d rows exceeds the %d-row cap; split it", len(req.Rows), maxIngestRows)
	}
	perm, err := columnPerm(schema, req.Columns)
	if err != nil {
		return nil, nil, http.StatusBadRequest, err
	}
	pts := make([]geom.Point, 0, len(req.Rows))
	cols := make([][]float64, schema.NumCols())
	for c := range cols {
		cols[c] = make([]float64, 0, len(req.Rows))
	}
	for i, row := range req.Rows {
		if err := appendRow(row, perm, &pts, cols, i); err != nil {
			return nil, nil, http.StatusBadRequest, err
		}
	}
	return pts, cols, 0, nil
}

// parseIngestNDJSON decodes the newline-delimited body form: one JSON
// array [x, y, v...] per line, schema column order. A truncated or
// malformed line rejects the whole batch — NDJSON is not applied
// line-by-line.
func parseIngestNDJSON(r *http.Request, schema geoblocks.Schema) ([]geom.Point, [][]float64, int, error) {
	perm, err := columnPerm(schema, nil)
	if err != nil {
		return nil, nil, http.StatusBadRequest, err
	}
	var pts []geom.Point
	cols := make([][]float64, schema.NumCols())
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		line++
		if text == "" {
			continue
		}
		var row []float64
		if err := json.Unmarshal([]byte(text), &row); err != nil {
			return nil, nil, http.StatusBadRequest, fmt.Errorf("line %d: malformed row: %v", line, err)
		}
		if len(pts) >= maxIngestRows {
			return nil, nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("batch exceeds the %d-row cap; split it", maxIngestRows)
		}
		if err := appendRow(row, perm, &pts, cols, line-1); err != nil {
			return nil, nil, http.StatusBadRequest, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, bodyErrStatus(err), fmt.Errorf("reading body: %v", err)
	}
	if len(pts) == 0 {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("missing rows")
	}
	return pts, cols, 0, nil
}

// bodyErrStatus distinguishes an over-limit body (413) from transport
// garbage (400).
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// ingestStatus maps a store ingest error to an HTTP status. Every 4xx/
// 5xx here implies nothing was applied: ingest validates whole batches
// up front.
func ingestStatus(err error) int {
	switch {
	case errors.Is(err, store.ErrBackpressure):
		return http.StatusServiceUnavailable
	case errors.Is(err, geoblocks.ErrReadOnly), errors.Is(err, geoblocks.ErrRebuildRequired):
		// The dataset cannot absorb these rows in its current shape —
		// a conflict with dataset state, not a malformed request.
		return http.StatusConflict
	case errors.Is(err, store.ErrBadValue), errors.Is(err, store.ErrOutOfBounds):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.reqIngest.Add(1)
	name := r.PathValue("name")
	d, ok := s.store.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", name)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxIngestBodyBytes)

	start := time.Now()
	var pts []geom.Point
	var cols [][]float64
	var status int
	var err error
	if strings.Contains(r.Header.Get("Content-Type"), "ndjson") {
		pts, cols, status, err = parseIngestNDJSON(r, d.Schema())
	} else {
		pts, cols, status, err = parseIngestJSON(r, d.Schema())
	}
	if err != nil {
		if status == http.StatusBadRequest {
			status = bodyErrStatus(err) // over-limit body surfaces as a decode error
		}
		writeError(w, status, "%v", err)
		return
	}

	seq, err := d.Ingest(pts, cols)
	if err != nil {
		st := ingestStatus(err)
		if st == http.StatusServiceUnavailable {
			// The compactor was kicked; the backlog drains in roughly one
			// fold pass.
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, st, "ingest: %v", err)
		return
	}
	s.ingestedRows.Add(uint64(len(pts)))
	writeJSON(w, http.StatusOK, ingestResponse{
		Dataset:   name,
		Rows:      len(pts),
		Seq:       seq,
		DeltaRows: d.DeltaRows(),
		ElapsedUS: time.Since(start).Microseconds(),
	})
}

func (s *server) handleCompact(w http.ResponseWriter, r *http.Request) {
	s.reqIngest.Add(1)
	name := r.PathValue("name")
	d, ok := s.store.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", name)
		return
	}
	st, err := d.Compact()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, geoblocks.ErrReadOnly) {
			status = http.StatusConflict
		}
		writeError(w, status, "compact: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Dataset string `json:"dataset"`
		store.CompactionStats
	}{Dataset: name, CompactionStats: st})
}
