// Package httpapi implements the HTTP/JSON API of the geoblocksd
// serving daemon over a store.Store: dataset registry (including
// create-from-snapshot and the per-dataset snapshot endpoint), polygon /
// rectangle / batch aggregate queries, statistics and Prometheus-style
// metrics. cmd/geoblocksd wires this handler to a listener with flags
// and graceful shutdown; docs/OPERATIONS.md is the endpoint reference
// and docs/FORMAT.md specifies the snapshot artifacts.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"geoblocks"
	"geoblocks/internal/cluster"
	"geoblocks/internal/dataset"
	"geoblocks/internal/geom"
	"geoblocks/internal/snapshot"
	"geoblocks/internal/store"
)

// maxCreateRows caps POST /v1/datasets so a single request cannot OOM the
// daemon; bigger datasets are loaded at startup with -load.
const maxCreateRows = 10_000_000

// maxBodyBytes caps POST request bodies for the same reason: a query
// body is polygon rings and aggregate specs, a create body is a small
// configuration object — 8 MiB comfortably fits any legitimate batch
// while bounding what a decoder will materialise.
const maxBodyBytes = 8 << 20

// DefaultLevel is the block grid level used when a dataset is created
// without one; over city-scale bounds it is a street-level grid, the
// paper's mid-range operating point.
const DefaultLevel = 14

// Config carries the daemon-level handler configuration.
type Config struct {
	// DataDir is the snapshot directory: the default target of the
	// per-dataset snapshot endpoint (DataDir/<name>), the tree the
	// daemon restores at startup, and the scope of DELETE's ?purge=1.
	// Empty disables the defaults — snapshot requests then must carry an
	// explicit path, and purge is rejected.
	DataDir string
	// SnapshotV3 makes the snapshot endpoint write mappable format-v3
	// snapshots (docs/FORMAT.md Sec. 8) instead of version-1 framed
	// payloads — set by the daemon when mmap serving is on, so written
	// snapshots restore in place on the next start. Mapped datasets
	// clone their backing directory either way.
	SnapshotV3 bool
	// Cluster, when non-nil, puts the node in cluster mode: it serves
	// the internal partial-query endpoint (peers answer shard
	// sub-coverings as serialized accumulators) and exports cluster
	// stats and metrics. Built by the daemon from -cluster-config.
	Cluster *cluster.Coordinator
	// Coordinator additionally routes /v1/query through the cluster
	// scatter-gather: local shards in process, remote shards via peer
	// partial requests, merged in global shard order. Requires Cluster.
	// The dataset-level result cache is bypassed on this path (cluster
	// answers are merged fresh each query; see docs/ARCHITECTURE.md).
	Coordinator bool
}

// server holds the daemon state behind the HTTP handlers: the dataset
// store, the snapshot configuration, plus request counters for /metrics.
type server struct {
	store *store.Store
	cfg   Config
	start time.Time

	// creating reserves dataset names while a POST /v1/datasets build or
	// snapshot restore is in flight, so concurrent creates of one name
	// run the expensive work only once.
	creating sync.Map
	// snapshotting reserves dataset names while a snapshot write is in
	// flight, so concurrent snapshot requests cannot interleave writes
	// to one target directory.
	snapshotting sync.Map

	// per-endpoint-group request counters, exported by /metrics.
	reqDatasets atomic.Uint64
	reqQuery    atomic.Uint64
	reqJoin     atomic.Uint64
	reqStats    atomic.Uint64
	reqMetrics  atomic.Uint64
	reqIngest   atomic.Uint64
	reqPartial  atomic.Uint64
	// ingestedRows counts rows acknowledged through the rows endpoint.
	ingestedRows atomic.Uint64
}

// NewHandler wraps a store in the daemon's HTTP handler. The endpoint
// groups (docs/OPERATIONS.md has the full reference):
//
//	GET/POST /v1/datasets, DELETE /v1/datasets/{name} — registry
//	POST /v1/datasets/{name}/rows — streaming ingest (JSON or NDJSON)
//	POST /v1/datasets/{name}/compact — fold pending rows into the base
//	POST /v1/datasets/{name}/snapshot — durable snapshot to disk
//	POST /v1/query — polygon, rect and batch-of-polygons aggregation
//	GET /v1/stats — dataset statistics with per-shard breakdown
//	GET /metrics — Prometheus-style counters
func NewHandler(st *store.Store, cfg Config) http.Handler {
	_, h := newServer(st, cfg)
	return h
}

// newServer builds the server state and its routing mux; tests use the
// server to reach the counters directly.
func newServer(st *store.Store, cfg Config) (*server, http.Handler) {
	s := &server{store: st, cfg: cfg, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("POST /v1/datasets", s.handleCreateDataset)
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDropDataset)
	mux.HandleFunc("POST /v1/datasets/{name}/rows", s.handleIngest)
	mux.HandleFunc("POST /v1/datasets/{name}/compact", s.handleCompact)
	mux.HandleFunc("POST /v1/datasets/{name}/snapshot", s.handleSnapshotDataset)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/join", s.handleJoin)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Cluster != nil {
		mux.HandleFunc("POST /internal/v1/partial", s.handlePartial)
	}
	return s, mux
}

// ValidDatasetName bounds the names the daemon will create or touch on
// disk: snapshot directories are named after datasets, so names must be
// safe single path elements. Letters, digits, '.', '_' and '-' up to 128
// characters, not starting with '.' (no hidden directories, no "..").
func ValidDatasetName(name string) bool {
	if name == "" || len(name) > 128 || name[0] == '.' {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorResponse is the uniform error body. Code is a stable
// machine-readable tag, set by cluster-mode endpoints so coordinators
// and operators can branch without parsing messages; Shards names the
// shard cells behind a per-shard failure (the typed 503 of an
// unavailable replica chain).
type errorResponse struct {
	Error  string   `json:"error"`
	Code   string   `json:"code,omitempty"`
	Shards []string `json:"shards,omitempty"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeTypedError is writeError with a machine-readable code and
// optional per-shard attribution.
func writeTypedError(w http.ResponseWriter, status int, code string, shards []string, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...), Code: code, Shards: shards})
}

// jsonFloat marshals NaN and ±Inf (legal aggregate results: the MIN of an
// empty region is NaN) as null, which encoding/json otherwise rejects.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// resultJSON is one query answer on the wire. level and error_bound
// report the query planner's decision: the grid level the answer was
// computed at and the guaranteed spatial error bound of that answer in
// domain units (0 = exact).
type resultJSON struct {
	Count        uint64      `json:"count"`
	Values       []jsonFloat `json:"values"`
	CellsVisited int         `json:"cells_visited"`
	Level        int         `json:"level"`
	ErrorBound   jsonFloat   `json:"error_bound"`
}

func toResultJSON(r geoblocks.Result) resultJSON {
	out := resultJSON{
		Count:        r.Count,
		Values:       make([]jsonFloat, len(r.Values)),
		CellsVisited: r.CellsVisited,
		Level:        r.Level,
		ErrorBound:   jsonFloat(r.ErrorBound),
	}
	for i, v := range r.Values {
		out.Values[i] = jsonFloat(v)
	}
	return out
}

// aggJSON is one requested aggregate: {"func": "sum", "col": "fare"}.
// col is ignored for count.
type aggJSON struct {
	Func string `json:"func"`
	Col  string `json:"col"`
}

func (a aggJSON) toRequest() (geoblocks.AggRequest, error) {
	fn := strings.ToLower(a.Func)
	if fn != "count" && a.Col == "" {
		return geoblocks.AggRequest{}, fmt.Errorf("aggregate %q needs a col", a.Func)
	}
	switch fn {
	case "count":
		return geoblocks.Count(), nil
	case "sum":
		return geoblocks.Sum(a.Col), nil
	case "min":
		return geoblocks.Min(a.Col), nil
	case "max":
		return geoblocks.Max(a.Col), nil
	case "avg":
		return geoblocks.Avg(a.Col), nil
	default:
		return geoblocks.AggRequest{}, fmt.Errorf("unknown aggregate func %q (count, sum, min, max, avg)", a.Func)
	}
}

// queryRequest is the /v1/query body. Exactly one of Polygon, Rect or
// Polygons must be set.
type queryRequest struct {
	Dataset string `json:"dataset"`
	// Polygon is an outer ring of [x, y] vertices.
	Polygon [][2]float64 `json:"polygon,omitempty"`
	// Rect is [minX, minY, maxX, maxY].
	Rect *[4]float64 `json:"rect,omitempty"`
	// Polygons is the batch form: one ring per query, answered with one
	// shared covering pass.
	Polygons [][][2]float64 `json:"polygons,omitempty"`
	Aggs     []aggJSON      `json:"aggs"`
	// MaxError is the acceptable spatial error bound in domain units; the
	// planner answers at the coarsest pyramid level satisfying it (0 =
	// exact). Applies to every form, batch included.
	MaxError float64 `json:"max_error,omitempty"`
	// Workers > 1 executes each query's covering with that many
	// goroutines (bypassing the query cache); 0 is the serial default.
	Workers int `json:"workers,omitempty"`
	// NoCache answers directly from the aggregate arrays even when the
	// dataset carries query caches.
	NoCache bool `json:"no_cache,omitempty"`
}

// maxQueryWorkers caps the per-request parallel fan-out a client may ask
// for; anything larger is a request error, not a bigger goroutine pool.
const maxQueryWorkers = 256

// options validates the planner knobs of a query request and converts
// them to geoblocks.QueryOptions.
func (q queryRequest) options() (geoblocks.QueryOptions, error) {
	if q.Workers < 0 || q.Workers > maxQueryWorkers {
		return geoblocks.QueryOptions{}, fmt.Errorf("workers must be in [0, %d], got %d", maxQueryWorkers, q.Workers)
	}
	opts := geoblocks.QueryOptions{MaxError: q.MaxError, Workers: q.Workers, DisableCache: q.NoCache}
	if err := opts.Validate(); err != nil {
		return geoblocks.QueryOptions{}, fmt.Errorf("max_error must be finite and >= 0, got %v", q.MaxError)
	}
	return opts, nil
}

// queryResponse is the /v1/query answer. Result is set for the polygon
// and rect forms, Results for the batch form.
type queryResponse struct {
	Dataset   string       `json:"dataset"`
	Result    *resultJSON  `json:"result,omitempty"`
	Results   []resultJSON `json:"results,omitempty"`
	ElapsedUS int64        `json:"elapsed_us"`
}

func parseRing(ring [][2]float64) (*geom.Polygon, error) {
	pts := make([]geom.Point, len(ring))
	for i, v := range ring {
		pts[i] = geom.Pt(v[0], v[1])
	}
	return geom.TryPolygon(pts)
}

// queryStatus maps a query error to an HTTP status: schema errors are the
// caller's fault.
func queryStatus(err error) int {
	if errors.Is(err, geoblocks.ErrUnknownColumn) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.reqQuery.Add(1)
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return
	}
	if req.Dataset == "" {
		writeError(w, http.StatusBadRequest, "missing dataset")
		return
	}
	d, ok := s.store.Get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", req.Dataset)
		return
	}
	forms := 0
	for _, set := range []bool{req.Polygon != nil, req.Rect != nil, req.Polygons != nil} {
		if set {
			forms++
		}
	}
	if forms != 1 {
		writeError(w, http.StatusBadRequest, "exactly one of polygon, rect or polygons must be set")
		return
	}
	if req.Polygons != nil && len(req.Polygons) == 0 {
		writeError(w, http.StatusBadRequest, "polygons must not be empty")
		return
	}
	if len(req.Aggs) == 0 {
		writeError(w, http.StatusBadRequest, "missing aggs")
		return
	}
	reqs := make([]geoblocks.AggRequest, len(req.Aggs))
	for i, a := range req.Aggs {
		ar, err := a.toRequest()
		if err != nil {
			writeError(w, http.StatusBadRequest, "aggs[%d]: %v", i, err)
			return
		}
		reqs[i] = ar
	}
	opts, err := req.options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.cfg.Coordinator && s.cfg.Cluster != nil {
		s.handleClusterQuery(w, r, req, opts, reqs)
		return
	}

	start := time.Now()
	resp := queryResponse{Dataset: req.Dataset}
	switch {
	case req.Polygon != nil:
		poly, err := parseRing(req.Polygon)
		if err != nil {
			writeError(w, http.StatusBadRequest, "polygon: %v", err)
			return
		}
		res, err := d.QueryOpts(poly, opts, reqs...)
		if err != nil {
			writeError(w, queryStatus(err), "query: %v", err)
			return
		}
		rj := toResultJSON(res)
		resp.Result = &rj
	case req.Rect != nil:
		rc := geom.Rect{Min: geom.Pt(req.Rect[0], req.Rect[1]), Max: geom.Pt(req.Rect[2], req.Rect[3])}
		if !rc.IsValid() {
			writeError(w, http.StatusBadRequest, "rect: min exceeds max")
			return
		}
		res, err := d.QueryRectOpts(rc, opts, reqs...)
		if err != nil {
			writeError(w, queryStatus(err), "query: %v", err)
			return
		}
		rj := toResultJSON(res)
		resp.Result = &rj
	default:
		polys := make([]*geom.Polygon, len(req.Polygons))
		for i, ring := range req.Polygons {
			poly, err := parseRing(ring)
			if err != nil {
				writeError(w, http.StatusBadRequest, "polygons[%d]: %v", i, err)
				return
			}
			polys[i] = poly
		}
		results, err := d.QueryBatchOpts(polys, opts, reqs...)
		if err != nil {
			writeError(w, queryStatus(err), "query: %v", err)
			return
		}
		resp.Results = make([]resultJSON, len(results))
		for i, res := range results {
			resp.Results[i] = toResultJSON(res)
		}
	}
	resp.ElapsedUS = time.Since(start).Microseconds()
	writeJSON(w, http.StatusOK, resp)
}

// datasetsResponse is the GET /v1/datasets body.
type datasetsResponse struct {
	Datasets []store.DatasetStats `json:"datasets"`
	// Residency reports the store's resident-memory manager when mmap
	// serving is enabled: how much of the mapped snapshot footprint is
	// materialised, against what budget, and the fault/eviction churn.
	// Absent when the daemon serves decoded heap blocks.
	Residency *store.ResidencyStats `json:"residency,omitempty"`
	// Cluster reports the node's cluster coordinator state (assignment
	// epoch, per-peer request/hedge/failover counters). Absent outside
	// cluster mode.
	Cluster *cluster.Stats `json:"cluster,omitempty"`
}

func (s *server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	s.reqDatasets.Add(1)
	// The list view stays compact; /v1/stats has the per-shard breakdown.
	writeJSON(w, http.StatusOK, datasetsResponse{Datasets: s.store.Summaries()})
}

// createRequest is the POST /v1/datasets body. source selects where the
// dataset comes from: "synthetic" (default) builds from an
// internal/dataset spec; "snapshot" restores a durable snapshot
// directory written by the snapshot endpoint (docs/FORMAT.md).
type createRequest struct {
	Name string `json:"name"`
	// Source is "synthetic" (default when empty) or "snapshot".
	Source string `json:"source"`
	// Path locates the snapshot directory for source "snapshot"; empty
	// defaults to <data-dir>/<name>.
	Path string `json:"path"`
	// Spec is the synthetic dataset generator: taxi, tweets or osm.
	Spec string `json:"spec"`
	Rows int    `json:"rows"`
	Seed int64  `json:"seed"`
	// Level is the block grid level; 0 picks the default (14).
	Level      int `json:"level"`
	ShardLevel int `json:"shard_level"`
	// CacheThreshold > 0 enables per-shard query caches with that
	// aggregate-threshold fraction.
	CacheThreshold   float64 `json:"cache_threshold"`
	CacheAutoRefresh int     `json:"cache_auto_refresh"`
	// PyramidLevels derives that many coarser levels per shard for the
	// query planner's max_error knob (0 = full resolution only).
	PyramidLevels int `json:"pyramid_levels"`
	// ResultCacheBytes > 0 attaches the dataset-level result cache with
	// that byte budget (docs/OPERATIONS.md, "Result cache tuning"). The
	// field is an integer byte count: fractional or non-numeric budgets
	// are malformed requests, negative ones are build errors.
	ResultCacheBytes int64 `json:"result_cache_bytes"`
	// ResultCacheMinHits is the result cache's admission floor; 0 admits
	// on first miss. Ignored unless ResultCacheBytes is positive.
	ResultCacheMinHits int `json:"result_cache_min_hits"`
}

// SpecByName resolves the synthetic generator specs the daemon can load.
func SpecByName(name string) (dataset.Spec, bool) {
	switch strings.ToLower(name) {
	case "taxi":
		return dataset.NYCTaxi(), true
	case "tweets":
		return dataset.USTweets(), true
	case "osm":
		return dataset.OSMAmericas(), true
	}
	return dataset.Spec{}, false
}

// BuildSynthetic generates spec rows and builds a store dataset from them.
func BuildSynthetic(name, specName string, rows int, seed int64, opts store.Options) (*store.Dataset, error) {
	spec, ok := SpecByName(specName)
	if !ok {
		return nil, fmt.Errorf("unknown spec %q (taxi, tweets, osm)", specName)
	}
	raw := dataset.Generate(spec, rows, seed)
	clean := raw.CleanRule()
	opts.Clean = &clean
	return store.Build(name, raw.Spec.Bound, raw.Spec.Schema, raw.Points, raw.Cols, opts)
}

func (s *server) handleCreateDataset(w http.ResponseWriter, r *http.Request) {
	s.reqDatasets.Add(1)
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "missing name")
		return
	}
	if !ValidDatasetName(req.Name) {
		writeError(w, http.StatusBadRequest, "invalid dataset name %q (letters, digits, '.', '_', '-'; must not start with '.')", req.Name)
		return
	}
	fromSnapshot := false
	switch strings.ToLower(req.Source) {
	case "", "synthetic":
	case "snapshot":
		fromSnapshot = true
	default:
		writeError(w, http.StatusBadRequest, "unknown source %q (synthetic, snapshot)", req.Source)
		return
	}
	if !fromSnapshot && (req.Rows <= 0 || req.Rows > maxCreateRows) {
		writeError(w, http.StatusBadRequest, "rows must be in [1, %d], got %d", maxCreateRows, req.Rows)
		return
	}
	if req.Level == 0 {
		req.Level = DefaultLevel
	}
	if _, exists := s.store.Get(req.Name); exists {
		writeError(w, http.StatusConflict, "dataset %q already exists", req.Name)
		return
	}
	// Reserve the name for the duration of the build or restore so
	// concurrent creates of the same dataset do not each run the
	// (potentially multi-second) work; the final Add still decides
	// conflicts with already-registered datasets atomically.
	if _, busy := s.creating.LoadOrStore(req.Name, struct{}{}); busy {
		writeError(w, http.StatusConflict, "dataset %q is being created", req.Name)
		return
	}
	defer s.creating.Delete(req.Name)

	var d *store.Dataset
	var err error
	if fromSnapshot {
		dir := req.Path
		if dir == "" {
			if s.cfg.DataDir == "" {
				writeError(w, http.StatusBadRequest, "source snapshot needs a path (no -data-dir configured)")
				return
			}
			dir = filepath.Join(s.cfg.DataDir, req.Name)
		}
		// Serve the snapshot in place when the store has mmap serving
		// enabled (v1 snapshots fall back to the eager decode inside).
		if res := s.store.Residency(); res != nil {
			d, err = store.OpenMapped(dir, req.Name, res)
		} else {
			d, err = store.Open(dir, req.Name)
		}
		if err != nil {
			writeError(w, snapshotStatus(err), "restore: %v", err)
			return
		}
	} else {
		d, err = BuildSynthetic(req.Name, req.Spec, req.Rows, req.Seed, store.Options{
			Level:              req.Level,
			ShardLevel:         req.ShardLevel,
			CacheThreshold:     req.CacheThreshold,
			CacheAutoRefresh:   req.CacheAutoRefresh,
			PyramidLevels:      req.PyramidLevels,
			ResultCacheBytes:   req.ResultCacheBytes,
			ResultCacheMinHits: req.ResultCacheMinHits,
		})
		if err != nil {
			writeError(w, http.StatusBadRequest, "build: %v", err)
			return
		}
	}
	if err := s.store.Add(d); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, d.Stats())
}

// snapshotStatus maps a snapshot load failure to an HTTP status: a
// corrupt or version-mismatched artifact is 422 (the request was fine,
// the artifact is not), everything else (typically a missing path) is
// the caller's 400.
func snapshotStatus(err error) int {
	if errors.Is(err, snapshot.ErrCorrupt) || errors.Is(err, snapshot.ErrVersion) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusBadRequest
}

func (s *server) handleDropDataset(w http.ResponseWriter, r *http.Request) {
	s.reqDatasets.Add(1)
	name := r.PathValue("name")
	purge := false
	if v := r.URL.Query().Get("purge"); v != "" {
		p, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad purge value %q", v)
			return
		}
		purge = p
	}
	// Validate the purge preconditions before dropping anything, so a
	// rejected purge does not half-apply.
	if purge {
		if s.cfg.DataDir == "" {
			writeError(w, http.StatusBadRequest, "purge requires the daemon to run with -data-dir")
			return
		}
		if !ValidDatasetName(name) {
			writeError(w, http.StatusBadRequest, "invalid dataset name %q", name)
			return
		}
		// Claim the same per-dataset reservation the snapshot endpoint
		// holds: otherwise an in-flight snapshot could re-create the
		// directory right after the purge removed it.
		if _, busy := s.snapshotting.LoadOrStore(name, struct{}{}); busy {
			writeError(w, http.StatusConflict, "dataset %q is being snapshotted; retry the purge", name)
			return
		}
		defer s.snapshotting.Delete(name)
	}
	if !s.store.Drop(name) {
		writeError(w, http.StatusNotFound, "unknown dataset %q", name)
		return
	}
	// DELETE without ?purge=1 never touches disk: a dropped dataset's
	// snapshot+WAL pair stays restorable (docs/OPERATIONS.md).
	if purge {
		if err := os.RemoveAll(filepath.Join(s.cfg.DataDir, name)); err != nil {
			writeError(w, http.StatusInternalServerError, "dataset dropped but purge failed: %v", err)
			return
		}
		if err := snapshot.RemoveWAL(s.cfg.DataDir, name); err != nil {
			writeError(w, http.StatusInternalServerError, "dataset dropped but wal purge failed: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"dropped": name, "purged": purge})
}

// snapshotRequest is the POST /v1/datasets/{name}/snapshot body. The
// body is optional; an absent or empty path targets
// <data-dir>/<name>.
type snapshotRequest struct {
	Path string `json:"path"`
}

// snapshotResponse reports a completed snapshot write.
type snapshotResponse struct {
	Dataset string `json:"dataset"`
	Path    string `json:"path"`
	// FormatVersion and Shards echo the written manifest; Bytes is the
	// total payload size on disk.
	FormatVersion int   `json:"format_version"`
	Shards        int   `json:"shards"`
	Bytes         int64 `json:"bytes"`
	ElapsedUS     int64 `json:"elapsed_us"`
}

func (s *server) handleSnapshotDataset(w http.ResponseWriter, r *http.Request) {
	s.reqDatasets.Add(1)
	name := r.PathValue("name")
	d, ok := s.store.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", name)
		return
	}
	var req snapshotRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return
	}
	dir := req.Path
	if dir == "" {
		if s.cfg.DataDir == "" {
			writeError(w, http.StatusBadRequest, "snapshot needs a path (no -data-dir configured)")
			return
		}
		if !ValidDatasetName(name) {
			writeError(w, http.StatusBadRequest, "invalid dataset name %q", name)
			return
		}
		dir = filepath.Join(s.cfg.DataDir, name)
	}
	// One snapshot per dataset at a time: concurrent writes to one
	// target directory would race on the rename swap.
	if _, busy := s.snapshotting.LoadOrStore(name, struct{}{}); busy {
		writeError(w, http.StatusConflict, "dataset %q is being snapshotted", name)
		return
	}
	defer s.snapshotting.Delete(name)

	start := time.Now()
	var m snapshot.Manifest
	var err error
	if s.cfg.SnapshotV3 {
		m, err = d.SnapshotV3(dir)
	} else {
		m, err = d.Snapshot(dir)
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	var total int64
	for _, sh := range m.Shards {
		total += sh.Bytes
	}
	writeJSON(w, http.StatusOK, snapshotResponse{
		Dataset:       name,
		Path:          dir,
		FormatVersion: m.FormatVersion,
		Shards:        len(m.Shards),
		Bytes:         total,
		ElapsedUS:     time.Since(start).Microseconds(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.reqStats.Add(1)
	if name := r.URL.Query().Get("dataset"); name != "" {
		d, ok := s.store.Get(name)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown dataset %q", name)
			return
		}
		writeJSON(w, http.StatusOK, d.Stats())
		return
	}
	resp := datasetsResponse{Datasets: s.store.Stats()}
	if res := s.store.Residency(); res != nil {
		rs := res.Stats()
		resp.Residency = &rs
	}
	if s.cfg.Cluster != nil {
		cs := s.cfg.Cluster.Stats()
		resp.Cluster = &cs
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics renders Prometheus-style text metrics: per-dataset sizes,
// query counts and cache effectiveness counters, plus daemon totals.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reqMetrics.Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	writeMetric := func(name, labels string, v float64) {
		if labels != "" {
			fmt.Fprintf(&b, "%s{%s} %g\n", name, labels, v)
		} else {
			fmt.Fprintf(&b, "%s %g\n", name, v)
		}
	}
	fmt.Fprintf(&b, "# geoblocksd metrics\n")
	writeMetric("geoblocksd_uptime_seconds", "", time.Since(s.start).Seconds())
	writeMetric("geoblocksd_requests_total", `endpoint="datasets"`, float64(s.reqDatasets.Load()))
	writeMetric("geoblocksd_requests_total", `endpoint="query"`, float64(s.reqQuery.Load()))
	writeMetric("geoblocksd_requests_total", `endpoint="join"`, float64(s.reqJoin.Load()))
	writeMetric("geoblocksd_requests_total", `endpoint="stats"`, float64(s.reqStats.Load()))
	writeMetric("geoblocksd_requests_total", `endpoint="metrics"`, float64(s.reqMetrics.Load()))
	writeMetric("geoblocksd_requests_total", `endpoint="ingest"`, float64(s.reqIngest.Load()))
	writeMetric("geoblocksd_ingested_rows_total", "", float64(s.ingestedRows.Load()))

	// Cluster series exist exactly when the daemon runs with a cluster
	// assignment (-cluster-config), a per-process configuration.
	if s.cfg.Cluster != nil {
		writeMetric("geoblocksd_requests_total", `endpoint="partial"`, float64(s.reqPartial.Load()))
		cs := s.cfg.Cluster.Stats()
		writeMetric("geoblocksd_cluster_assignment_epoch", "", float64(cs.Epoch))
		writeMetric("geoblocksd_cluster_nodes", "", float64(cs.Nodes))
		writeMetric("geoblocksd_cluster_replication", "", float64(cs.Replication))
		writeMetric("geoblocksd_cluster_queries_total", "", float64(cs.Queries))
		writeMetric("geoblocksd_cluster_local_partials_total", "", float64(cs.LocalParts))
		writeMetric("geoblocksd_cluster_remote_calls_total", "", float64(cs.RemoteCalls))
		writeMetric("geoblocksd_cluster_unavailable_total", "", float64(cs.Unavailable))
		writeMetric("geoblocksd_cluster_assignment_reloads_total", "", float64(cs.Reloads))
		for _, p := range cs.Peers {
			l := fmt.Sprintf("peer=%q", p.Name)
			writeMetric("geoblocksd_cluster_peer_requests_total", l, float64(p.Requests))
			writeMetric("geoblocksd_cluster_peer_errors_total", l, float64(p.Errors))
			writeMetric("geoblocksd_cluster_peer_retries_total", l, float64(p.Retries))
			writeMetric("geoblocksd_cluster_peer_hedges_total", l, float64(p.Hedges))
			writeMetric("geoblocksd_cluster_peer_failovers_total", l, float64(p.Failovers))
			writeMetric("geoblocksd_cluster_peer_successes_total", l, float64(p.Successes))
			writeMetric("geoblocksd_cluster_peer_latency_micros_total", l, float64(p.LatencyTotalMicros))
		}
	}

	// Residency series exist exactly when the daemon runs with mmap
	// serving — a per-process configuration, so they are stable for the
	// lifetime of any scrape target.
	if res := s.store.Residency(); res != nil {
		rs := res.Stats()
		writeMetric("geoblocksd_residency_budget_bytes", "", float64(rs.BudgetBytes))
		writeMetric("geoblocksd_residency_mapped_bytes", "", float64(rs.MappedBytes))
		writeMetric("geoblocksd_residency_mapped_shards", "", float64(rs.MappedShards))
		writeMetric("geoblocksd_residency_resident_bytes", "", float64(rs.ResidentBytes))
		writeMetric("geoblocksd_residency_resident_shards", "", float64(rs.ResidentShards))
		writeMetric("geoblocksd_residency_shard_faults_total", "", float64(rs.Faults))
		writeMetric("geoblocksd_residency_evictions_total", "", float64(rs.Evictions))
	}

	for _, st := range s.store.Summaries() {
		l := fmt.Sprintf("dataset=%q", st.Name)
		writeMetric("geoblocks_dataset_shards", l, float64(st.NumShards))
		writeMetric("geoblocks_dataset_cells", l, float64(st.Cells))
		writeMetric("geoblocks_dataset_tuples", l, float64(st.Tuples))
		writeMetric("geoblocks_dataset_size_bytes", l, float64(st.SizeBytes))
		writeMetric("geoblocks_pyramid_levels", l, float64(st.PyramidLevels))
		writeMetric("geoblocks_pyramid_bytes", l, float64(st.PyramidBytes))
		writeMetric("geoblocks_dataset_queries_total", l, float64(st.Queries))
		if st.Mapped {
			writeMetric("geoblocks_dataset_mapped_bytes", l, float64(st.MappedBytes))
			writeMetric("geoblocks_dataset_resident_bytes", l, float64(st.ResidentBytes))
			writeMetric("geoblocks_dataset_resident_shards", l, float64(st.ResidentShards))
		}
		writeMetric("geoblocks_cache_bytes", l, float64(st.CacheBytes))
		writeMetric("geoblocks_cache_probes_total", l, float64(st.Cache.Probes))
		writeMetric("geoblocks_cache_full_hits_total", l, float64(st.Cache.FullHits))
		writeMetric("geoblocks_cache_partial_hits_total", l, float64(st.Cache.PartialHits))
		writeMetric("geoblocks_cache_misses_total", l, float64(st.Cache.Misses))
		writeMetric("geoblocks_cache_derived_hits_total", l, float64(st.Cache.DerivedHits))
		// Result-cache counters are emitted for every dataset — zeros when
		// no result cache is attached — so scrapers and alert rules never
		// see a series appear or vanish with the cache configuration.
		var rcHits, rcMisses, rcEvictions, rcBytes float64
		if rc := st.ResultCache; rc != nil {
			rcHits = float64(rc.Hits)
			rcMisses = float64(rc.Misses)
			rcEvictions = float64(rc.Evictions)
			rcBytes = float64(rc.Bytes)
		}
		writeMetric("geoblocks_resultcache_hits_total", l, rcHits)
		writeMetric("geoblocks_resultcache_misses_total", l, rcMisses)
		writeMetric("geoblocks_resultcache_evictions_total", l, rcEvictions)
		writeMetric("geoblocks_resultcache_bytes", l, rcBytes)
		// Join counters follow the same always-emit convention: zeros
		// before the first join, so the interior-fraction ratio
		// (interior / (interior + boundary)) is computable from stable
		// series.
		var jJoins, jPolys, jInterior, jBoundary, jFallbacks, jHits, jMisses float64
		if jc := st.Join; jc != nil {
			jJoins = float64(jc.Joins)
			jPolys = float64(jc.Polygons)
			jInterior = float64(jc.InteriorPairs)
			jBoundary = float64(jc.BoundaryPairs)
			jFallbacks = float64(jc.Fallbacks)
			jHits = float64(jc.CacheHits)
			jMisses = float64(jc.CacheMisses)
		}
		writeMetric("geoblocks_join_queries_total", l, jJoins)
		writeMetric("geoblocks_join_polygons_total", l, jPolys)
		writeMetric("geoblocks_join_interior_pairs_total", l, jInterior)
		writeMetric("geoblocks_join_boundary_pairs_total", l, jBoundary)
		writeMetric("geoblocks_join_fallbacks_total", l, jFallbacks)
		writeMetric("geoblocks_join_cache_hits_total", l, jHits)
		writeMetric("geoblocks_join_cache_misses_total", l, jMisses)
		// Ingest/compaction series exist for every writable (non-mapped)
		// dataset, zeros included, so dashboards see stable series from
		// the moment a dataset is created.
		if ing := st.Ingest; ing != nil {
			writeMetric("geoblocks_ingest_batches_total", l, float64(ing.Batches))
			writeMetric("geoblocks_ingest_rows_total", l, float64(ing.Rows))
			writeMetric("geoblocks_ingest_delta_rows", l, float64(ing.DeltaRows))
			writeMetric("geoblocks_ingest_backpressure_total", l, float64(ing.Backpressured))
			writeMetric("geoblocks_ingest_seq", l, float64(ing.IngestSeq))
			writeMetric("geoblocks_ingest_folded_seq", l, float64(ing.FoldedSeq))
			writeMetric("geoblocks_compactions_total", l, float64(ing.Compactions))
			writeMetric("geoblocks_compacted_rows_total", l, float64(ing.CompactedRows))
			writeMetric("geoblocks_ingest_wal_bytes", l, float64(ing.WALBytes))
		}
	}
	_, _ = w.Write([]byte(b.String()))
}
