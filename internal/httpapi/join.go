package httpapi

import (
	"encoding/json"
	"net/http"
	"time"

	"geoblocks"
	"geoblocks/internal/geom"
	"geoblocks/internal/store"
)

// maxJoinPolygons caps one join request's polygon count (and a window's
// nx*ny tile count): the operator is built for hundreds to a few
// thousand regions per call, and the cap keeps one request's memory
// bounded the same way maxBodyBytes bounds its wire size.
const maxJoinPolygons = 10_000

// joinRequest is the POST /v1/join body. Exactly one region form must be
// set: polygons (explicit rings) or window (an nx-by-ny rectangular tile
// grid over rect — the map-tile / heatmap form, generated server-side so
// the client sends 4 floats instead of thousands of rings).
type joinRequest struct {
	Dataset string `json:"dataset"`
	// Polygons is one outer ring per join region.
	Polygons [][][2]float64 `json:"polygons,omitempty"`
	// Window tiles rect into an nx-by-ny grid of adjacent rectangles,
	// answered as one join; results are row-major from (min_x, min_y).
	Window *joinWindow `json:"window,omitempty"`
	Aggs   []aggJSON   `json:"aggs"`
	// MaxError plans the shared pyramid level for every region (0 =
	// exact), exactly as for /v1/query.
	MaxError float64 `json:"max_error,omitempty"`
	// NoCache bypasses the result cache and the per-shard caches.
	NoCache bool `json:"no_cache,omitempty"`
}

// joinWindow is the rect-grid form: rect is [minX, minY, maxX, maxY].
type joinWindow struct {
	Rect [4]float64 `json:"rect"`
	NX   int        `json:"nx"`
	NY   int        `json:"ny"`
}

// rects materialises the tile grid, row-major from the minimum corner.
func (jw *joinWindow) rects() []geom.Rect {
	r := geom.Rect{Min: geom.Pt(jw.Rect[0], jw.Rect[1]), Max: geom.Pt(jw.Rect[2], jw.Rect[3])}
	dx := (r.Max.X - r.Min.X) / float64(jw.NX)
	dy := (r.Max.Y - r.Min.Y) / float64(jw.NY)
	out := make([]geom.Rect, 0, jw.NX*jw.NY)
	for iy := 0; iy < jw.NY; iy++ {
		for ix := 0; ix < jw.NX; ix++ {
			out = append(out, geom.Rect{
				Min: geom.Pt(r.Min.X+float64(ix)*dx, r.Min.Y+float64(iy)*dy),
				Max: geom.Pt(r.Min.X+float64(ix+1)*dx, r.Min.Y+float64(iy+1)*dy),
			})
		}
	}
	return out
}

// joinStatsJSON reports one join call's plan shape and classification
// economy alongside the results.
type joinStatsJSON struct {
	Polygons int `json:"polygons"`
	// UniquePolygons counts the distinct geometries after content dedup;
	// duplicated regions are covered once and replicated positionally.
	UniquePolygons int `json:"unique_polygons"`
	Level          int `json:"level"`
	GridLevel      int `json:"grid_level"`
	// InteriorPairs were answered O(1) from whole grid cells;
	// InteriorFraction is their share of all classified pairs.
	InteriorPairs    int     `json:"interior_pairs"`
	BoundaryPairs    int     `json:"boundary_pairs"`
	InteriorFraction float64 `json:"interior_fraction"`
	Fallbacks        int     `json:"fallbacks"`
	CacheHits        int     `json:"cache_hits"`
	CacheMisses      int     `json:"cache_misses"`
}

func toJoinStatsJSON(s store.JoinStats) joinStatsJSON {
	return joinStatsJSON{
		Polygons:         s.Polygons,
		UniquePolygons:   s.UniquePolygons,
		Level:            s.Level,
		GridLevel:        s.GridLevel,
		InteriorPairs:    s.InteriorPairs,
		BoundaryPairs:    s.BoundaryPairs,
		InteriorFraction: s.InteriorFraction(),
		Fallbacks:        s.Fallbacks,
		CacheHits:        s.CacheHits,
		CacheMisses:      s.CacheMisses,
	}
}

// joinResponse is the /v1/join answer: one result per region,
// positionally aligned with the request's polygons (or row-major tiles).
type joinResponse struct {
	Dataset   string        `json:"dataset"`
	Results   []resultJSON  `json:"results"`
	Stats     joinStatsJSON `json:"stats"`
	ElapsedUS int64         `json:"elapsed_us"`
}

func (s *server) handleJoin(w http.ResponseWriter, r *http.Request) {
	s.reqJoin.Add(1)
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return
	}
	if req.Dataset == "" {
		writeError(w, http.StatusBadRequest, "missing dataset")
		return
	}
	d, ok := s.store.Get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", req.Dataset)
		return
	}
	if (req.Polygons != nil) == (req.Window != nil) {
		writeError(w, http.StatusBadRequest, "exactly one of polygons or window must be set")
		return
	}
	if req.Polygons != nil && len(req.Polygons) == 0 {
		writeError(w, http.StatusBadRequest, "polygons must not be empty")
		return
	}
	if len(req.Polygons) > maxJoinPolygons {
		writeError(w, http.StatusBadRequest, "join is capped at %d polygons, got %d", maxJoinPolygons, len(req.Polygons))
		return
	}
	if jw := req.Window; jw != nil {
		rc := geom.Rect{Min: geom.Pt(jw.Rect[0], jw.Rect[1]), Max: geom.Pt(jw.Rect[2], jw.Rect[3])}
		if !rc.IsValid() {
			writeError(w, http.StatusBadRequest, "window rect: min exceeds max")
			return
		}
		if jw.NX < 1 || jw.NY < 1 || jw.NX*jw.NY > maxJoinPolygons {
			writeError(w, http.StatusBadRequest, "window grid must be at least 1x1 and at most %d tiles, got %dx%d", maxJoinPolygons, jw.NX, jw.NY)
			return
		}
	}
	if len(req.Aggs) == 0 {
		writeError(w, http.StatusBadRequest, "missing aggs")
		return
	}
	reqs := make([]geoblocks.AggRequest, len(req.Aggs))
	for i, a := range req.Aggs {
		ar, err := a.toRequest()
		if err != nil {
			writeError(w, http.StatusBadRequest, "aggs[%d]: %v", i, err)
			return
		}
		reqs[i] = ar
	}
	opts := geoblocks.QueryOptions{MaxError: req.MaxError, DisableCache: req.NoCache}
	if err := opts.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "max_error must be finite and >= 0, got %v", req.MaxError)
		return
	}

	if s.cfg.Coordinator && s.cfg.Cluster != nil {
		s.handleClusterJoin(w, r, req, opts, reqs)
		return
	}

	start := time.Now()
	var results []geoblocks.Result
	var stats store.JoinStats
	var err error
	if req.Window != nil {
		results, stats, err = d.JoinRects(req.Window.rects(), opts, reqs...)
	} else {
		polys := make([]*geom.Polygon, len(req.Polygons))
		for i, ring := range req.Polygons {
			poly, perr := parseRing(ring)
			if perr != nil {
				writeError(w, http.StatusBadRequest, "polygons[%d]: %v", i, perr)
				return
			}
			polys[i] = poly
		}
		results, stats, err = d.Join(polys, opts, reqs...)
	}
	if err != nil {
		writeError(w, queryStatus(err), "join: %v", err)
		return
	}
	resp := joinResponse{
		Dataset: req.Dataset,
		Results: make([]resultJSON, len(results)),
		Stats:   toJoinStatsJSON(stats),
	}
	for i, res := range results {
		resp.Results[i] = toResultJSON(res)
	}
	resp.ElapsedUS = time.Since(start).Microseconds()
	writeJSON(w, http.StatusOK, resp)
}

// handleClusterJoin is handleJoin's cluster-mode tail: the coordinator
// plans the shared grid once and scatters each region's covering across
// the peers. The window form joins the materialised tile outlines.
func (s *server) handleClusterJoin(w http.ResponseWriter, r *http.Request, req joinRequest, opts geoblocks.QueryOptions, reqs []geoblocks.AggRequest) {
	start := time.Now()
	var polys []*geom.Polygon
	if req.Window != nil {
		rects := req.Window.rects()
		polys = make([]*geom.Polygon, len(rects))
		for i, rc := range rects {
			polys[i] = rc.Polygon()
		}
	} else {
		polys = make([]*geom.Polygon, len(req.Polygons))
		for i, ring := range req.Polygons {
			poly, err := parseRing(ring)
			if err != nil {
				writeError(w, http.StatusBadRequest, "polygons[%d]: %v", i, err)
				return
			}
			polys[i] = poly
		}
	}
	results, stats, err := s.cfg.Cluster.Join(r.Context(), req.Dataset, polys, opts, reqs)
	if err != nil {
		clusterErrStatus(w, err)
		return
	}
	resp := joinResponse{
		Dataset: req.Dataset,
		Results: make([]resultJSON, len(results)),
		Stats:   toJoinStatsJSON(stats),
	}
	for i, res := range results {
		resp.Results[i] = toResultJSON(res)
	}
	resp.ElapsedUS = time.Since(start).Microseconds()
	writeJSON(w, http.StatusOK, resp)
}
