package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"geoblocks"
	"geoblocks/internal/cluster"
	"geoblocks/internal/geom"
	"geoblocks/internal/store"
)

// clusterTestServer wires the test store into a cluster-enabled handler
// (epoch 7) so /internal/v1/partial is routable.
func clusterTestServer(t *testing.T) (*httptest.Server, *store.Dataset) {
	t.Helper()
	st := testStore(t)
	cfg := &cluster.Config{Epoch: 7, Nodes: []cluster.Node{{Name: "self", Addr: "127.0.0.1:1"}}}
	co, err := cluster.New(st, cfg, "self")
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	ts := httptest.NewServer(NewHandler(st, Config{Cluster: co}))
	t.Cleanup(ts.Close)
	d, _ := st.Get("taxi")
	return ts, d
}

// partialErrBody is the typed error envelope peers answer with.
type partialErrBody struct {
	Error  string   `json:"error"`
	Code   string   `json:"code"`
	Shards []string `json:"shards"`
}

// TestPartialEndpointRoundTrip: a well-formed partial request answers
// one frame per shard, and merging the decoded frames in request order
// reproduces the local query exactly.
func TestPartialEndpointRoundTrip(t *testing.T) {
	ts, d := clusterTestServer(t)
	rect := geom.Rect{Min: geom.Pt(-74.05, 40.60), Max: geom.Pt(-73.85, 40.85)}
	reqs := []geoblocks.AggRequest{geoblocks.Count(), geoblocks.Sum("fare_amount"), geoblocks.Min("fare_amount")}

	plan := d.PlanCoverRect(rect, 0)
	subs := d.ShardSubs(plan.Cover)
	if len(subs) < 2 {
		t.Fatalf("rect split into %d shards, want >= 2", len(subs))
	}
	preq := cluster.PartialRequest{
		Dataset:      "taxi",
		CodecVersion: cluster.CodecVersion,
		Epoch:        7,
		Level:        plan.Level,
		Aggs:         cluster.AggsFromRequests(reqs),
	}
	for _, sub := range subs {
		preq.Shards = append(preq.Shards, cluster.ShardReq{
			Cell:  cluster.CellToken(sub.Cell),
			Cover: cluster.EncodeCells(sub.Sub),
		})
	}
	body, _ := json.Marshal(preq)
	resp, data := postJSON(t, ts, "/internal/v1/partial", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	var pr cluster.PartialResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if pr.Dataset != "taxi" || pr.Epoch != 7 || pr.Level != plan.Level {
		t.Fatalf("envelope = %+v, want dataset taxi epoch 7 level %d", pr, plan.Level)
	}
	if len(pr.Shards) != len(subs) {
		t.Fatalf("answered %d shards, want %d", len(pr.Shards), len(subs))
	}

	var total *geoblocks.Accumulator
	for i, sp := range pr.Shards {
		if sp.Cell != preq.Shards[i].Cell {
			t.Fatalf("shard %d echoed %s, want %s", i, sp.Cell, preq.Shards[i].Cell)
		}
		acc, err := d.DecodePartial(sp.Partial, reqs)
		if err != nil {
			t.Fatalf("decoding shard %d frame: %v", i, err)
		}
		if total == nil {
			total = acc
		} else if err := total.MergeFrom(acc); err != nil {
			t.Fatalf("merging shard %d: %v", i, err)
		}
	}
	want, err := d.QueryRectOpts(rect, geoblocks.QueryOptions{}, reqs...)
	if err != nil {
		t.Fatalf("control query: %v", err)
	}
	got := total.Result()
	if got.Count != want.Count {
		t.Errorf("merged count = %d, want %d", got.Count, want.Count)
	}
	for i, v := range got.Values {
		if v != want.Values[i] {
			t.Errorf("merged value[%d] = %v, want %v", i, v, want.Values[i])
		}
	}
}

// TestPartialEndpointMalformed is the typed-rejection table: every way
// a partial request can be wrong must map onto a distinct,
// machine-readable 4xx.
func TestPartialEndpointMalformed(t *testing.T) {
	ts, d := clusterTestServer(t)
	shard := d.ShardCells()[0]
	shardTok := cluster.CellToken(shard)
	coverTok := cluster.CellToken(shard.ChildBeginAt(12))
	valid := func() cluster.PartialRequest {
		return cluster.PartialRequest{
			Dataset:      "taxi",
			CodecVersion: cluster.CodecVersion,
			Epoch:        7,
			Level:        12,
			Aggs:         []cluster.AggJSON{{Func: "count"}},
			Shards:       []cluster.ShardReq{{Cell: shardTok, Cover: []string{coverTok}}},
		}
	}
	cases := []struct {
		name       string
		body       func() string
		wantStatus int
		wantCode   string
		wantShards []string
	}{
		{
			name:       "truncated json",
			body:       func() string { return `{"dataset":"taxi"` },
			wantStatus: http.StatusBadRequest,
			wantCode:   cluster.CodeBadRequest,
		},
		{
			name: "codec version mismatch",
			body: func() string {
				r := valid()
				r.CodecVersion = 99
				return marshal(t, r)
			},
			wantStatus: http.StatusBadRequest,
			wantCode:   cluster.CodeCodecMismatch,
		},
		{
			name: "missing dataset",
			body: func() string {
				r := valid()
				r.Dataset = ""
				return marshal(t, r)
			},
			wantStatus: http.StatusBadRequest,
			wantCode:   cluster.CodeBadRequest,
		},
		{
			name: "unknown dataset",
			body: func() string {
				r := valid()
				r.Dataset = "ghost"
				return marshal(t, r)
			},
			wantStatus: http.StatusNotFound,
			wantCode:   cluster.CodeUnknownDataset,
		},
		{
			name: "stale assignment epoch",
			body: func() string {
				r := valid()
				r.Epoch = 6
				return marshal(t, r)
			},
			wantStatus: http.StatusConflict,
			wantCode:   cluster.CodeStaleEpoch,
		},
		{
			name: "missing aggs",
			body: func() string {
				r := valid()
				r.Aggs = nil
				return marshal(t, r)
			},
			wantStatus: http.StatusBadRequest,
			wantCode:   cluster.CodeBadRequest,
		},
		{
			name: "unknown aggregate",
			body: func() string {
				r := valid()
				r.Aggs = []cluster.AggJSON{{Func: "median", Col: "fare_amount"}}
				return marshal(t, r)
			},
			wantStatus: http.StatusBadRequest,
			wantCode:   cluster.CodeBadRequest,
		},
		{
			name: "unservable level",
			body: func() string {
				r := valid()
				r.Level = 7 // below the materialised pyramid (8..12)
				return marshal(t, r)
			},
			wantStatus: http.StatusUnprocessableEntity,
			wantCode:   cluster.CodeBadLevel,
		},
		{
			name: "missing shards",
			body: func() string {
				r := valid()
				r.Shards = nil
				return marshal(t, r)
			},
			wantStatus: http.StatusBadRequest,
			wantCode:   cluster.CodeBadRequest,
		},
		{
			name: "bad shard token",
			body: func() string {
				r := valid()
				r.Shards[0].Cell = "zz"
				return marshal(t, r)
			},
			wantStatus: http.StatusBadRequest,
			wantCode:   cluster.CodeBadRequest,
		},
		{
			name: "unknown shard",
			body: func() string {
				r := valid()
				// A valid cell this dataset has no shard for (too fine to
				// be a shard prefix).
				r.Shards[0].Cell = cluster.CellToken(shard.ChildBeginAt(5))
				return marshal(t, r)
			},
			wantStatus: http.StatusUnprocessableEntity,
			wantCode:   cluster.CodeUnknownShard,
			wantShards: []string{cluster.CellToken(shard.ChildBeginAt(5))},
		},
		{
			name: "non-ascending cover",
			body: func() string {
				r := valid()
				a := shard.ChildBeginAt(12)
				b := a.Next()
				r.Shards[0].Cover = []string{cluster.CellToken(b), cluster.CellToken(a)}
				return marshal(t, r)
			},
			wantStatus: http.StatusBadRequest,
			wantCode:   cluster.CodeBadRequest,
		},
		{
			name: "cover finer than level",
			body: func() string {
				r := valid()
				r.Shards[0].Cover = []string{cluster.CellToken(shard.ChildBeginAt(13))}
				return marshal(t, r)
			},
			wantStatus: http.StatusBadRequest,
			wantCode:   cluster.CodeBadRequest,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts, "/internal/v1/partial", tc.body())
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, data)
			}
			var eb partialErrBody
			if err := json.Unmarshal(data, &eb); err != nil {
				t.Fatalf("error body not JSON: %v (%s)", err, data)
			}
			if eb.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", eb.Code, tc.wantCode)
			}
			if eb.Error == "" {
				t.Errorf("empty error message")
			}
			if tc.wantShards != nil {
				if fmt.Sprint(eb.Shards) != fmt.Sprint(tc.wantShards) {
					t.Errorf("shards = %v, want %v", eb.Shards, tc.wantShards)
				}
			}
		})
	}
}

// TestPartialEndpointAbsentWithoutCluster: a single-node daemon does
// not expose the internal endpoint at all.
func TestPartialEndpointAbsentWithoutCluster(t *testing.T) {
	ts := httptest.NewServer(NewHandler(testStore(t), Config{}))
	defer ts.Close()
	resp, _ := postJSON(t, ts, "/internal/v1/partial", `{}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func marshal(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}
