package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"geoblocks/internal/store"
)

// testStore builds a small sharded store for the handler tests.
func testStore(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	d, err := BuildSynthetic("taxi", "taxi", 20_000, 1, store.Options{
		Level:          12,
		ShardLevel:     2,
		CacheThreshold: 0.1,
		PyramidLevels:  4,
	})
	if err != nil {
		t.Fatalf("BuildSynthetic: %v", err)
	}
	if err := st.Add(d); err != nil {
		t.Fatalf("Add: %v", err)
	}
	return st
}

func postJSON(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func getJSON(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

// taxiRect is a rect query body over the middle of the NYC bound.
const taxiRect = `{"dataset":"taxi","rect":[-74.05,40.60,-73.85,40.85],"aggs":[{"func":"count"},{"func":"sum","col":"fare_amount"}]}`

func TestQueryEndpoint(t *testing.T) {
	_, h := newServer(testStore(t), Config{})
	ts := httptest.NewServer(h)
	defer ts.Close()

	t.Run("rect", func(t *testing.T) {
		resp, body := postJSON(t, ts, "/v1/query", taxiRect)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var qr queryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if qr.Result == nil || qr.Result.Count == 0 {
			t.Fatalf("rect query found nothing: %s", body)
		}
		if len(qr.Result.Values) != 2 {
			t.Fatalf("want 2 values, got %s", body)
		}
	})

	t.Run("polygon", func(t *testing.T) {
		body := `{"dataset":"taxi","polygon":[[-74.05,40.60],[-73.85,40.60],[-73.85,40.85],[-74.05,40.85]],"aggs":[{"func":"count"}]}`
		resp, data := postJSON(t, ts, "/v1/query", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var qr queryResponse
		if err := json.Unmarshal(data, &qr); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if qr.Result == nil || qr.Result.Count == 0 {
			t.Fatalf("polygon query found nothing: %s", data)
		}
	})

	t.Run("batch", func(t *testing.T) {
		body := `{"dataset":"taxi","polygons":[
			[[-74.05,40.60],[-73.85,40.60],[-73.85,40.85],[-74.05,40.85]],
			[[-80,40],[-79,40],[-79,41],[-80,41]]
		],"aggs":[{"func":"count"},{"func":"min","col":"fare_amount"}]}`
		resp, data := postJSON(t, ts, "/v1/query", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var qr queryResponse
		if err := json.Unmarshal(data, &qr); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if len(qr.Results) != 2 {
			t.Fatalf("want 2 batch results, got %s", data)
		}
		if qr.Results[0].Count == 0 {
			t.Errorf("first polygon found nothing")
		}
		// The second polygon is outside the NYC bound: zero rows, and its
		// MIN must serialise as null (NaN is not valid JSON).
		if qr.Results[1].Count != 0 {
			t.Errorf("out-of-domain polygon count = %d", qr.Results[1].Count)
		}
		if !strings.Contains(string(data), "null") {
			t.Errorf("empty MIN not serialised as null: %s", data)
		}
	})

	// max_error routes through the planner: the answer reports a coarser
	// level with a positive guaranteed bound and combines fewer cells.
	t.Run("max_error", func(t *testing.T) {
		exactResp, exactBody := postJSON(t, ts, "/v1/query", taxiRect)
		if exactResp.StatusCode != http.StatusOK {
			t.Fatalf("exact status %d", exactResp.StatusCode)
		}
		approx := `{"dataset":"taxi","rect":[-74.05,40.60,-73.85,40.85],"max_error":0.1,"aggs":[{"func":"count"},{"func":"sum","col":"fare_amount"}]}`
		resp, body := postJSON(t, ts, "/v1/query", approx)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var eq, aq queryResponse
		if err := json.Unmarshal(exactBody, &eq); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(body, &aq); err != nil {
			t.Fatal(err)
		}
		if eq.Result.Level != 12 {
			t.Errorf("exact level = %d, want 12", eq.Result.Level)
		}
		if aq.Result.Level >= 12 || aq.Result.ErrorBound <= 0 {
			t.Errorf("approximate answer not planned coarser: level %d bound %g", aq.Result.Level, aq.Result.ErrorBound)
		}
		if aq.Result.CellsVisited > eq.Result.CellsVisited {
			t.Errorf("approximate query combined more cells (%d) than exact (%d)", aq.Result.CellsVisited, eq.Result.CellsVisited)
		}
		if aq.Result.Count < eq.Result.Count {
			t.Errorf("coarser covering lost tuples: %d < %d", aq.Result.Count, eq.Result.Count)
		}
	})

	// batch result equals the one-at-a-time polygon answer.
	t.Run("batch matches single", func(t *testing.T) {
		single := `{"dataset":"taxi","polygon":[[-74.05,40.60],[-73.85,40.60],[-73.85,40.85],[-74.05,40.85]],"aggs":[{"func":"count"}]}`
		batch := `{"dataset":"taxi","polygons":[[[-74.05,40.60],[-73.85,40.60],[-73.85,40.85],[-74.05,40.85]]],"aggs":[{"func":"count"}]}`
		_, sData := postJSON(t, ts, "/v1/query", single)
		_, bData := postJSON(t, ts, "/v1/query", batch)
		var sr, br queryResponse
		if err := json.Unmarshal(sData, &sr); err != nil {
			t.Fatalf("unmarshal single: %v", err)
		}
		if err := json.Unmarshal(bData, &br); err != nil {
			t.Fatalf("unmarshal batch: %v", err)
		}
		if sr.Result.Count != br.Results[0].Count {
			t.Errorf("batch count %d != single count %d", br.Results[0].Count, sr.Result.Count)
		}
	})
}

// TestQueryErrors is the table-driven malformed-request suite.
func TestQueryErrors(t *testing.T) {
	_, h := newServer(testStore(t), Config{})
	ts := httptest.NewServer(h)
	defer ts.Close()

	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"malformed json", `{"dataset":`, http.StatusBadRequest},
		{"missing dataset", `{"rect":[0,0,1,1],"aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		{"unknown dataset", `{"dataset":"nope","rect":[0,0,1,1],"aggs":[{"func":"count"}]}`, http.StatusNotFound},
		{"no region", `{"dataset":"taxi","aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		{"two regions", `{"dataset":"taxi","rect":[0,0,1,1],"polygon":[[0,0],[1,0],[0,1]],"aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		{"missing aggs", `{"dataset":"taxi","rect":[0,0,1,1]}`, http.StatusBadRequest},
		{"unknown agg func", `{"dataset":"taxi","rect":[0,0,1,1],"aggs":[{"func":"median","col":"fare_amount"}]}`, http.StatusBadRequest},
		{"agg without col", `{"dataset":"taxi","rect":[0,0,1,1],"aggs":[{"func":"sum"}]}`, http.StatusBadRequest},
		{"unknown column", `{"dataset":"taxi","rect":[-74.05,40.60,-73.85,40.85],"aggs":[{"func":"sum","col":"nope"}]}`, http.StatusBadRequest},
		{"invalid rect", `{"dataset":"taxi","rect":[1,1,0,0],"aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		{"degenerate polygon", `{"dataset":"taxi","polygon":[[0,0],[1,1]],"aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		{"degenerate batch polygon", `{"dataset":"taxi","polygons":[[[0,0],[1,1]]],"aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		{"empty batch", `{"dataset":"taxi","polygons":[],"aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		// Planner options: max_error must be a finite non-negative JSON
		// number (JSON cannot carry NaN/Inf — a string stand-in is a type
		// error, caught by the decoder) and workers must stay within the
		// daemon's fan-out cap. Bad options are rejected on the batch form
		// exactly like on the single forms.
		{"negative max_error", `{"dataset":"taxi","rect":[0,0,1,1],"max_error":-0.5,"aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		{"NaN max_error", `{"dataset":"taxi","rect":[0,0,1,1],"max_error":"NaN","aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		{"Inf max_error", `{"dataset":"taxi","rect":[0,0,1,1],"max_error":"+Inf","aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		{"negative workers", `{"dataset":"taxi","rect":[0,0,1,1],"workers":-1,"aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		{"huge workers", `{"dataset":"taxi","rect":[0,0,1,1],"workers":100000,"aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		{"negative max_error on batch", `{"dataset":"taxi","polygons":[[[0,0],[1,0],[1,1],[0,1]]],"max_error":-1,"aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		{"bad workers on batch", `{"dataset":"taxi","polygons":[[[0,0],[1,0],[1,1],[0,1]]],"workers":-7,"aggs":[{"func":"count"}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts, "/v1/query", tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				t.Fatalf("error body not JSON {error}: %s", body)
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/query")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/query status = %d, want 405", resp.StatusCode)
		}
	})
}

func TestDatasetsEndpoint(t *testing.T) {
	_, h := newServer(testStore(t), Config{})
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, body := getJSON(t, ts, "/v1/datasets")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", resp.StatusCode)
	}
	var dl datasetsResponse
	if err := json.Unmarshal(body, &dl); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(dl.Datasets) != 1 || dl.Datasets[0].Name != "taxi" {
		t.Fatalf("list = %s", body)
	}
	if dl.Datasets[0].NumShards < 2 {
		t.Errorf("taxi not sharded: %s", body)
	}

	// Create a second dataset with its own cache configuration, query it,
	// then drop it.
	create := `{"name":"tweets-small","spec":"tweets","rows":5000,"level":10,"shard_level":1,"cache_threshold":0.25}`
	resp, body = postJSON(t, ts, "/v1/datasets", create)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d: %s", resp.StatusCode, body)
	}
	var st store.DatasetStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("unmarshal create: %v", err)
	}
	if !st.CacheEnabled || st.ShardLevel != 1 {
		t.Fatalf("create stats = %s", body)
	}

	// Error paths for creation.
	for name, tc := range map[string]struct {
		body   string
		status int
	}{
		"duplicate":    {create, http.StatusConflict},
		"unknown spec": {`{"name":"x","spec":"mars","rows":10}`, http.StatusBadRequest},
		"zero rows":    {`{"name":"x","spec":"taxi","rows":0}`, http.StatusBadRequest},
		"missing name": {`{"spec":"taxi","rows":10}`, http.StatusBadRequest},
		"bad options":  {`{"name":"x","spec":"taxi","rows":10,"level":5,"shard_level":6}`, http.StatusBadRequest},
		// Result-cache knobs: a negative byte budget or admission floor is
		// a build error; a NaN or fractional budget is not an integer byte
		// count at all, so the decoder rejects the body (JSON numbers
		// cannot carry NaN — a string stand-in is a type error).
		"negative result cache bytes":    {`{"name":"x","spec":"taxi","rows":10,"result_cache_bytes":-1}`, http.StatusBadRequest},
		"NaN result cache bytes":         {`{"name":"x","spec":"taxi","rows":10,"result_cache_bytes":"NaN"}`, http.StatusBadRequest},
		"fractional result cache bytes":  {`{"name":"x","spec":"taxi","rows":10,"result_cache_bytes":1048576.5}`, http.StatusBadRequest},
		"negative result cache min hits": {`{"name":"x","spec":"taxi","rows":10,"result_cache_bytes":1048576,"result_cache_min_hits":-2}`, http.StatusBadRequest},
	} {
		resp, body := postJSON(t, ts, "/v1/datasets", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("create %s: status %d, want %d (%s)", name, resp.StatusCode, tc.status, body)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/tweets-small", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("drop status %d", dresp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/tweets-small", nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("second drop status %d, want 404", dresp.StatusCode)
	}
}

func TestStatsAndMetricsEndpoints(t *testing.T) {
	_, h := newServer(testStore(t), Config{})
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Drive a few queries so the counters move.
	for i := 0; i < 3; i++ {
		postJSON(t, ts, "/v1/query", taxiRect)
	}

	resp, body := getJSON(t, ts, "/v1/stats?dataset=taxi")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st store.DatasetStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("unmarshal stats: %v", err)
	}
	if st.Queries != 3 {
		t.Errorf("stats queries = %d, want 3", st.Queries)
	}
	if len(st.Shards) != st.NumShards || st.NumShards == 0 {
		t.Errorf("per-shard stats missing: %s", body)
	}

	resp, _ = getJSON(t, ts, "/v1/stats?dataset=nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown stats dataset status %d, want 404", resp.StatusCode)
	}

	resp, body = getJSON(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`geoblocks_dataset_queries_total{dataset="taxi"} 3`,
		`geoblocks_dataset_tuples{dataset="taxi"}`,
		`geoblocks_dataset_shards{dataset="taxi"}`,
		`geoblocks_cache_probes_total{dataset="taxi"}`,
		`geoblocksd_requests_total{endpoint="query"} 3`,
		"geoblocksd_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestResultCacheEndpoints drives the result cache through the HTTP
// surface: create with a byte budget, hit it with a repeated query, then
// read the effectiveness back through /v1/stats and /metrics. Every
// geoblocks_resultcache_* series must be present for every dataset —
// zeros for datasets without a result cache.
func TestResultCacheEndpoints(t *testing.T) {
	_, h := newServer(testStore(t), Config{})
	ts := httptest.NewServer(h)
	defer ts.Close()

	create := `{"name":"rc","spec":"taxi","rows":5000,"level":11,"shard_level":1,"result_cache_bytes":1048576,"result_cache_min_hits":0}`
	resp, body := postJSON(t, ts, "/v1/datasets", create)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d: %s", resp.StatusCode, body)
	}
	var created store.DatasetStats
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatalf("unmarshal create: %v", err)
	}
	if created.ResultCache == nil || created.ResultCache.MaxBytes != 1048576 {
		t.Fatalf("created stats carry no result cache: %s", body)
	}

	// The same footprint twice: a miss that admits (min_hits 0), then a hit.
	rcRect := `{"dataset":"rc","rect":[-74.05,40.60,-73.85,40.85],"aggs":[{"func":"count"},{"func":"sum","col":"fare_amount"}]}`
	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, ts, "/v1/query", rcRect); resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d status %d: %s", i, resp.StatusCode, body)
		}
	}

	resp, body = getJSON(t, ts, "/v1/stats?dataset=rc")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st store.DatasetStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("unmarshal stats: %v", err)
	}
	rc := st.ResultCache
	if rc == nil || rc.Hits != 1 || rc.Misses != 1 || rc.Entries != 1 {
		t.Fatalf("result cache counters off after miss+hit: %s", body)
	}
	if len(st.HotFootprints) != 1 || st.HotFootprints[0].Hits != 1 {
		t.Fatalf("full stats missing the hot footprint: %s", body)
	}
	if !strings.Contains(string(body), `"hot_footprints"`) {
		t.Fatalf("hot_footprints not serialised: %s", body)
	}

	resp, body = getJSON(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		// The cache-carrying dataset reports its real counters…
		`geoblocks_resultcache_hits_total{dataset="rc"} 1`,
		`geoblocks_resultcache_misses_total{dataset="rc"} 1`,
		`geoblocks_resultcache_evictions_total{dataset="rc"} 0`,
		// …and the cacheless dataset still emits every series, as zeros.
		`geoblocks_resultcache_hits_total{dataset="taxi"} 0`,
		`geoblocks_resultcache_misses_total{dataset="taxi"} 0`,
		`geoblocks_resultcache_evictions_total{dataset="taxi"} 0`,
		`geoblocks_resultcache_bytes{dataset="taxi"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
	// The occupied cache reports a positive byte size.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, `geoblocks_resultcache_bytes{dataset="rc"}`) {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("occupied result cache reports zero bytes: %s", line)
			}
		}
	}
}

// TestMmapServing drives the daemon-facing mmap surface end to end: with
// mmap serving enabled the snapshot endpoint writes format v3, a
// create-from-snapshot serves it in place (mapped dataset, bit-identical
// answers), and /v1/stats + /metrics expose the residency series.
func TestMmapServing(t *testing.T) {
	st := testStore(t)
	st.EnableMmap(0)
	dataDir := t.TempDir()
	_, h := newServer(st, Config{DataDir: dataDir, SnapshotV3: true})
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Snapshot the eager dataset: must be written in format v3.
	resp, body := postJSON(t, ts, "/v1/datasets/taxi/snapshot", `{}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d: %s", resp.StatusCode, body)
	}
	var snap struct {
		FormatVersion int `json:"format_version"`
	}
	if err := json.Unmarshal(body, &snap); err != nil || snap.FormatVersion != 2 {
		t.Fatalf("snapshot format_version = %d (%s), want 2", snap.FormatVersion, body)
	}

	// Restore it under a new name: with mmap on the store, the dataset
	// must come up mapped.
	resp, body = postJSON(t, ts, "/v1/datasets", `{"name":"taxi-mapped","source":"snapshot","path":"`+dataDir+`/taxi"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create from snapshot status %d: %s", resp.StatusCode, body)
	}
	var created store.DatasetStats
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if !created.Mapped || created.MappedBytes <= 0 {
		t.Fatalf("restored dataset not mapped: %s", body)
	}

	// Mapped answers must agree with the eager dataset's.
	q := `{"dataset":"%s","rect":[-74.05,40.60,-73.85,40.85],"aggs":[{"func":"count"},{"func":"sum","col":"fare_amount"}]}`
	_, eagerBody := postJSON(t, ts, "/v1/query", fmt.Sprintf(q, "taxi"))
	_, mappedBody := postJSON(t, ts, "/v1/query", fmt.Sprintf(q, "taxi-mapped"))
	var eager, mapped queryResponse
	if err := json.Unmarshal(eagerBody, &eager); err != nil || eager.Result == nil {
		t.Fatalf("eager query: %s", eagerBody)
	}
	if err := json.Unmarshal(mappedBody, &mapped); err != nil || mapped.Result == nil {
		t.Fatalf("mapped query: %s", mappedBody)
	}
	if eager.Result.Count != mapped.Result.Count {
		t.Fatalf("mapped count %d, eager %d", mapped.Result.Count, eager.Result.Count)
	}
	if len(eager.Result.Values) != len(mapped.Result.Values) {
		t.Fatalf("value arity differs: %s vs %s", mappedBody, eagerBody)
	}
	for i := range eager.Result.Values {
		if eager.Result.Values[i] != mapped.Result.Values[i] {
			t.Fatalf("value[%d]: mapped %v, eager %v", i, mapped.Result.Values[i], eager.Result.Values[i])
		}
	}

	// Stats must carry the store-level residency block and per-dataset
	// mapped figures.
	resp, body = getJSON(t, ts, "/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var stats datasetsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Residency == nil || stats.Residency.MappedBytes <= 0 || stats.Residency.Faults == 0 {
		t.Fatalf("missing or empty residency stats: %s", body)
	}

	_, metrics := getJSON(t, ts, "/metrics")
	for _, series := range []string{
		"geoblocksd_residency_mapped_bytes",
		"geoblocksd_residency_resident_bytes",
		"geoblocksd_residency_shard_faults_total",
		"geoblocksd_residency_evictions_total",
		`geoblocks_dataset_mapped_bytes{dataset="taxi-mapped"}`,
		`geoblocks_dataset_resident_shards{dataset="taxi-mapped"}`,
	} {
		if !strings.Contains(string(metrics), series) {
			t.Fatalf("metrics missing %s:\n%s", series, metrics)
		}
	}
}
