package httpapi

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"time"

	"geoblocks"
	"geoblocks/internal/cellid"
	"geoblocks/internal/cluster"
	"geoblocks/internal/geom"
	"geoblocks/internal/store"
)

// This file is the serving half of cluster mode: the internal
// partial-query endpoint peers answer (POST /internal/v1/partial) and
// the coordinator-routed /v1/query path. Validation on the partial
// endpoint is strict and typed — a peer that cannot answer exactly what
// was asked must say so in a machine-readable way, because the
// coordinator's merge correctness depends on every shard answering its
// precise sub-covering at the planned level under the agreed
// assignment epoch.

// handlePartial answers a peer partial request: one serialized
// accumulator per requested shard, computed by the same shardPartial
// kernel as local queries (pyramid level block, then the ingest delta,
// in fixed order).
func (s *server) handlePartial(w http.ResponseWriter, r *http.Request) {
	s.reqPartial.Add(1)
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req cluster.PartialRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeTypedError(w, http.StatusBadRequest, cluster.CodeBadRequest, nil, "malformed request body: %v", err)
		return
	}
	if req.CodecVersion != cluster.CodecVersion {
		writeTypedError(w, http.StatusBadRequest, cluster.CodeCodecMismatch, nil,
			"partial codec version %d (this node speaks %d)", req.CodecVersion, cluster.CodecVersion)
		return
	}
	if req.Dataset == "" {
		writeTypedError(w, http.StatusBadRequest, cluster.CodeBadRequest, nil, "missing dataset")
		return
	}
	d, ok := s.store.Get(req.Dataset)
	if !ok {
		writeTypedError(w, http.StatusNotFound, cluster.CodeUnknownDataset, nil, "unknown dataset %q", req.Dataset)
		return
	}
	// Epoch agreement: a request planned under a different assignment
	// generation may scatter shards differently than this node expects;
	// refuse it so a half-rolled-out assignment change fails loudly.
	if epoch := s.cfg.Cluster.Epoch(); req.Epoch != epoch {
		writeTypedError(w, http.StatusConflict, cluster.CodeStaleEpoch, nil,
			"request assignment epoch %d, this node serves epoch %d", req.Epoch, epoch)
		return
	}
	if len(req.Aggs) == 0 {
		writeTypedError(w, http.StatusBadRequest, cluster.CodeBadRequest, nil, "missing aggs")
		return
	}
	reqs := make([]geoblocks.AggRequest, len(req.Aggs))
	for i, a := range req.Aggs {
		ar, err := a.ToRequest()
		if err != nil {
			writeTypedError(w, http.StatusBadRequest, cluster.CodeBadRequest, nil, "aggs[%d]: %v", i, err)
			return
		}
		reqs[i] = ar
	}
	if !d.ServesLevel(req.Level) {
		writeTypedError(w, http.StatusUnprocessableEntity, cluster.CodeBadLevel, nil,
			"dataset %q serves no grid level %d", req.Dataset, req.Level)
		return
	}
	if len(req.Shards) == 0 {
		writeTypedError(w, http.StatusBadRequest, cluster.CodeBadRequest, nil, "missing shards")
		return
	}
	type unit struct {
		cell cellid.ID
		sub  []cellid.ID
	}
	units := make([]unit, len(req.Shards))
	for i, sh := range req.Shards {
		cell, err := cluster.ParseCell(sh.Cell)
		if err != nil {
			writeTypedError(w, http.StatusBadRequest, cluster.CodeBadRequest, nil, "shards[%d]: %v", i, err)
			return
		}
		if !d.HasShard(cell) {
			writeTypedError(w, http.StatusUnprocessableEntity, cluster.CodeUnknownShard, []string{sh.Cell},
				"dataset %q has no shard %s", req.Dataset, sh.Cell)
			return
		}
		sub, err := cluster.DecodeCells(sh.Cover)
		if err != nil {
			writeTypedError(w, http.StatusBadRequest, cluster.CodeBadRequest, nil, "shards[%d] cover: %v", i, err)
			return
		}
		// The accumulator kernel assumes no covering cell finer than the
		// executing grid level.
		for _, c := range sub {
			if c.Level() > req.Level {
				writeTypedError(w, http.StatusBadRequest, cluster.CodeBadRequest, nil,
					"shards[%d] cover cell %s is finer than level %d", i, cluster.CellToken(c), req.Level)
				return
			}
		}
		units[i] = unit{cell: cell, sub: sub}
	}

	opts := geoblocks.QueryOptions{DisableCache: req.NoCache}
	resp := cluster.PartialResponse{
		Dataset: req.Dataset,
		Epoch:   req.Epoch,
		Level:   req.Level,
		Shards:  make([]cluster.ShardPartialResp, len(units)),
	}
	var allCells []cellid.ID
	errs := make([]error, len(units))
	var wg sync.WaitGroup
	for i, u := range units {
		allCells = append(allCells, u.sub...)
		wg.Add(1)
		go func(i int, u unit) {
			defer wg.Done()
			acc, err := d.ShardPartial(u.cell, u.sub, req.Level, opts, reqs)
			if err != nil {
				errs[i] = err
				return
			}
			resp.Shards[i] = cluster.ShardPartialResp{Cell: req.Shards[i].Cell, Partial: acc.EncodePartial()}
		}(i, u)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			switch {
			case errors.Is(err, store.ErrUnknownShard):
				writeTypedError(w, http.StatusUnprocessableEntity, cluster.CodeUnknownShard,
					[]string{req.Shards[i].Cell}, "shards[%d]: %v", i, err)
			case errors.Is(err, geoblocks.ErrUnknownColumn):
				writeTypedError(w, http.StatusBadRequest, cluster.CodeBadRequest, nil, "shards[%d]: %v", i, err)
			default:
				writeError(w, http.StatusInternalServerError, "shards[%d]: %v", i, err)
			}
			return
		}
	}
	resp.ErrorBound = d.CoveringBound(allCells)
	writeJSON(w, http.StatusOK, resp)
}

// clusterErrStatus maps a coordinator query error onto a typed HTTP
// answer.
func clusterErrStatus(w http.ResponseWriter, err error) {
	var ue *cluster.UnavailableError
	switch {
	case errors.As(err, &ue):
		toks := make([]string, len(ue.Shards))
		for i, c := range ue.Shards {
			toks[i] = cluster.CellToken(c)
		}
		writeTypedError(w, http.StatusServiceUnavailable, cluster.CodeUnavailable, toks,
			"query: %v", err)
	case errors.Is(err, cluster.ErrUnknownDataset):
		writeTypedError(w, http.StatusNotFound, cluster.CodeUnknownDataset, nil, "query: %v", err)
	case errors.Is(err, geoblocks.ErrUnknownColumn):
		writeError(w, http.StatusBadRequest, "query: %v", err)
	default:
		writeError(w, http.StatusInternalServerError, "query: %v", err)
	}
}

// handleClusterQuery is handleQuery's cluster-mode tail: the request is
// already validated and parsed; route it through the coordinator's
// scatter-gather instead of the local-only router.
func (s *server) handleClusterQuery(w http.ResponseWriter, r *http.Request, req queryRequest, opts geoblocks.QueryOptions, reqs []geoblocks.AggRequest) {
	co := s.cfg.Cluster
	ctx := r.Context()
	start := time.Now()
	resp := queryResponse{Dataset: req.Dataset}
	switch {
	case req.Polygon != nil:
		poly, err := parseRing(req.Polygon)
		if err != nil {
			writeError(w, http.StatusBadRequest, "polygon: %v", err)
			return
		}
		res, err := co.Query(ctx, req.Dataset, poly, opts, reqs)
		if err != nil {
			clusterErrStatus(w, err)
			return
		}
		rj := toResultJSON(res)
		resp.Result = &rj
	case req.Rect != nil:
		rc := geom.Rect{Min: geom.Pt(req.Rect[0], req.Rect[1]), Max: geom.Pt(req.Rect[2], req.Rect[3])}
		if !rc.IsValid() {
			writeError(w, http.StatusBadRequest, "rect: min exceeds max")
			return
		}
		res, err := co.QueryRect(ctx, req.Dataset, rc, opts, reqs)
		if err != nil {
			clusterErrStatus(w, err)
			return
		}
		rj := toResultJSON(res)
		resp.Result = &rj
	default:
		polys := make([]*geom.Polygon, len(req.Polygons))
		for i, ring := range req.Polygons {
			poly, err := parseRing(ring)
			if err != nil {
				writeError(w, http.StatusBadRequest, "polygons[%d]: %v", i, err)
				return
			}
			polys[i] = poly
		}
		results, err := co.QueryBatch(ctx, req.Dataset, polys, opts, reqs)
		if err != nil {
			clusterErrStatus(w, err)
			return
		}
		resp.Results = make([]resultJSON, len(results))
		for i, res := range results {
			resp.Results[i] = toResultJSON(res)
		}
	}
	resp.ElapsedUS = time.Since(start).Microseconds()
	writeJSON(w, http.StatusOK, resp)
}
