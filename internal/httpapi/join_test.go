package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestJoinEndpoint(t *testing.T) {
	_, h := newServer(testStore(t), Config{})
	ts := httptest.NewServer(h)
	defer ts.Close()

	t.Run("polygons", func(t *testing.T) {
		body := `{"dataset":"taxi","polygons":[
			[[-74.05,40.60],[-73.85,40.60],[-73.85,40.85],[-74.05,40.85]],
			[[-74.00,40.70],[-73.95,40.70],[-73.95,40.75],[-74.00,40.75]],
			[[-80,40],[-79,40],[-79,41],[-80,41]]
		],"aggs":[{"func":"count"},{"func":"sum","col":"fare_amount"}]}`
		resp, data := postJSON(t, ts, "/v1/join", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var jr joinResponse
		if err := json.Unmarshal(data, &jr); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if len(jr.Results) != 3 {
			t.Fatalf("want 3 results, got %s", data)
		}
		if jr.Results[0].Count == 0 || jr.Results[1].Count == 0 {
			t.Fatalf("NYC polygons found nothing: %s", data)
		}
		if jr.Results[2].Count != 0 {
			t.Errorf("out-of-city polygon counted %d rows", jr.Results[2].Count)
		}
		if jr.Stats.Polygons != 3 {
			t.Errorf("stats report %d polygons, want 3: %s", jr.Stats.Polygons, data)
		}
		if jr.Stats.InteriorPairs+jr.Stats.BoundaryPairs == 0 && jr.Stats.Fallbacks == 0 {
			t.Errorf("join classified nothing: %s", data)
		}
		// The join must agree with the batch query form element by
		// element (the body is valid for both endpoints).
		qResp, qData := postJSON(t, ts, "/v1/query", body)
		if qResp.StatusCode != http.StatusOK {
			t.Fatalf("batch query status %d: %s", qResp.StatusCode, qData)
		}
		var qr queryResponse
		if err := json.Unmarshal(qData, &qr); err != nil {
			t.Fatalf("unmarshal batch: %v", err)
		}
		for i := range qr.Results {
			if jr.Results[i].Count != qr.Results[i].Count {
				t.Errorf("result %d: join count %d, batch count %d", i, jr.Results[i].Count, qr.Results[i].Count)
			}
		}
	})

	t.Run("window", func(t *testing.T) {
		body := `{"dataset":"taxi","window":{"rect":[-74.05,40.60,-73.85,40.85],"nx":4,"ny":3},"aggs":[{"func":"count"}],"max_error":0.002}`
		resp, data := postJSON(t, ts, "/v1/join", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var jr joinResponse
		if err := json.Unmarshal(data, &jr); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if len(jr.Results) != 12 {
			t.Fatalf("4x3 window returned %d results: %s", len(jr.Results), data)
		}
		var total uint64
		for _, res := range jr.Results {
			total += res.Count
		}
		if total == 0 {
			t.Fatalf("window join found nothing: %s", data)
		}
	})

	t.Run("metrics", func(t *testing.T) {
		resp, data := getJSON(t, ts, "/metrics")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics status %d", resp.StatusCode)
		}
		text := string(data)
		for _, want := range []string{
			`geoblocksd_requests_total{endpoint="join"}`,
			`geoblocks_join_polygons_total{dataset="taxi"}`,
			`geoblocks_join_interior_pairs_total{dataset="taxi"}`,
			`geoblocks_join_boundary_pairs_total{dataset="taxi"}`,
		} {
			if !strings.Contains(text, want) {
				t.Errorf("metrics missing %s", want)
			}
		}
		// The polygon and window joins above pushed 15 regions through.
		if !strings.Contains(text, `geoblocks_join_polygons_total{dataset="taxi"} 15`) {
			t.Errorf("join polygon counter not cumulative: %s",
				text[strings.Index(text, "geoblocks_join_"):])
		}
	})
}

func TestJoinEndpointErrors(t *testing.T) {
	_, h := newServer(testStore(t), Config{})
	ts := httptest.NewServer(h)
	defer ts.Close()

	cases := []struct {
		name, body string
		status     int
	}{
		{"missing dataset", `{"polygons":[[[0,0],[1,0],[1,1]]],"aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		{"unknown dataset", `{"dataset":"nope","polygons":[[[0,0],[1,0],[1,1]]],"aggs":[{"func":"count"}]}`, http.StatusNotFound},
		{"both forms", `{"dataset":"taxi","polygons":[[[0,0],[1,0],[1,1]]],"window":{"rect":[0,0,1,1],"nx":1,"ny":1},"aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		{"neither form", `{"dataset":"taxi","aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		{"empty polygons", `{"dataset":"taxi","polygons":[],"aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		{"missing aggs", `{"dataset":"taxi","polygons":[[[0,0],[1,0],[1,1]]]}`, http.StatusBadRequest},
		{"bad agg", `{"dataset":"taxi","polygons":[[[0,0],[1,0],[1,1]]],"aggs":[{"func":"median","col":"fare_amount"}]}`, http.StatusBadRequest},
		{"unknown column", `{"dataset":"taxi","polygons":[[[-74.05,40.60],[-73.85,40.60],[-73.85,40.85]]],"aggs":[{"func":"sum","col":"nope"}]}`, http.StatusBadRequest},
		{"degenerate ring", `{"dataset":"taxi","polygons":[[[0,0],[1,0]]],"aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		{"inverted window", `{"dataset":"taxi","window":{"rect":[1,1,0,0],"nx":1,"ny":1},"aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		{"zero window grid", `{"dataset":"taxi","window":{"rect":[0,0,1,1],"nx":0,"ny":3},"aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		{"oversized window grid", `{"dataset":"taxi","window":{"rect":[0,0,1,1],"nx":200,"ny":200},"aggs":[{"func":"count"}]}`, http.StatusBadRequest},
		{"negative max_error", `{"dataset":"taxi","polygons":[[[0,0],[1,0],[1,1]]],"aggs":[{"func":"count"}],"max_error":-2}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts, "/v1/join", tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, data)
			}
		})
	}

	// An oversized explicit polygon list trips the cap too.
	var sb strings.Builder
	sb.WriteString(`{"dataset":"taxi","polygons":[`)
	for i := 0; i <= maxJoinPolygons; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `[[0,0],[1,0],[1,1]]`)
	}
	sb.WriteString(`],"aggs":[{"func":"count"}]}`)
	resp, data := postJSON(t, ts, "/v1/join", sb.String())
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized join status %d: %s", resp.StatusCode, data)
	}
}
