// Package cellid implements the hierarchical spatial decomposition that
// GeoBlocks is built on (paper Sec. 3.1): a quadtree over a configurable
// planar domain whose cells are enumerated by a Hilbert space-filling curve
// and identified by 64-bit keys.
//
// The encoding mirrors Google S2's cell ids without the cube-face bits: a
// cell at level L stores its 2L Hilbert position bits in the high bits of
// the word, followed by a single sentinel 1 bit, followed by zeros. The
// position of the lowest set bit therefore encodes the level, children share
// their parent's bit prefix, and containment tests reduce to bitwise range
// comparisons — exactly the properties the paper relies on for constant-time
// pruning and prefix-encoded indexing.
package cellid

import (
	"fmt"
	"math/bits"
)

// MaxLevel is the deepest subdivision level. At level 30 the domain is
// divided into 4^30 ≈ 10^18 leaf cells; over an NYC-sized domain a leaf is
// well below GPS precision, matching the paper's observation that point
// snapping error is negligible.
const MaxLevel = 30

// ID identifies a cell at some level of the hierarchy. The zero ID is
// invalid and doubles as a "none" sentinel.
type ID uint64

// FromPos constructs the ID of the cell at the given level whose Hilbert
// position (among the 4^level cells of that level) is pos.
func FromPos(pos uint64, level int) ID {
	shift := uint(2*(MaxLevel-level) + 1)
	return ID(pos<<shift | 1<<(shift-1))
}

// FromIJ constructs the ID of the cell at the given level with grid
// coordinates (i, j), where i, j ∈ [0, 2^level).
func FromIJ(i, j uint32, level int) ID {
	return FromPos(ijToPos(i, j, uint(level)), level)
}

// lsb returns the lowest set bit of id, which encodes the cell's level.
func (id ID) lsb() uint64 { return uint64(id) & -uint64(id) }

// IsValid reports whether id is a structurally valid cell id: non-zero,
// with its sentinel bit at an even position below 2*MaxLevel+1.
func (id ID) IsValid() bool {
	return id != 0 && uint64(id)>>(2*MaxLevel+1) == 0 && id.lsb()&0x5555555555555555 != 0
}

// Level returns the subdivision level of id, in [0, MaxLevel].
func (id ID) Level() int {
	return MaxLevel - bits.TrailingZeros64(uint64(id))/2
}

// IsLeaf reports whether id is a cell at MaxLevel.
func (id ID) IsLeaf() bool { return uint64(id)&1 != 0 }

// Pos returns the Hilbert position of id among the cells of its level.
func (id ID) Pos() uint64 {
	return uint64(id) >> (uint(bits.TrailingZeros64(uint64(id))) + 1)
}

// IJ returns the grid coordinates of id at its own level.
func (id ID) IJ() (i, j uint32) {
	return posToIJ(id.Pos(), uint(id.Level()))
}

// Parent returns the ancestor of id at the given level, which must not
// exceed id's own level.
func (id ID) Parent(level int) ID {
	newLSB := uint64(1) << uint(2*(MaxLevel-level))
	return ID(uint64(id)&-newLSB | newLSB)
}

// ImmediateParent returns the parent one level up. It must not be called on
// the level-0 root.
func (id ID) ImmediateParent() ID {
	newLSB := id.lsb() << 2
	return ID(uint64(id)&-newLSB | newLSB)
}

// Children returns the four children of id in Hilbert order. It must not be
// called on leaf cells.
func (id ID) Children() [4]ID {
	lsb := id.lsb()
	childLSB := lsb >> 2
	base := uint64(id) - lsb + childLSB
	return [4]ID{
		ID(base),
		ID(base + 2*childLSB),
		ID(base + 4*childLSB),
		ID(base + 6*childLSB),
	}
}

// ChildBeginAt returns the first descendant of id at the given level (in
// Hilbert order). level must be ≥ id's level.
func (id ID) ChildBeginAt(level int) ID {
	lsbAt := uint64(1) << uint(2*(MaxLevel-level))
	return ID(uint64(id) - id.lsb() + lsbAt)
}

// ChildEndAt returns the last descendant of id at the given level (in
// Hilbert order). level must be ≥ id's level.
func (id ID) ChildEndAt(level int) ID {
	lsbAt := uint64(1) << uint(2*(MaxLevel-level))
	return ID(uint64(id) + id.lsb() - lsbAt)
}

// RangeMin returns the smallest leaf ID contained in id. Together with
// RangeMax this gives the key range [RangeMin, RangeMax] spanned by all of
// id's descendants, enabling the binary-search pruning in Listings 1 and 2.
func (id ID) RangeMin() ID { return ID(uint64(id) - (id.lsb() - 1)) }

// RangeMax returns the largest leaf ID contained in id.
func (id ID) RangeMax() ID { return ID(uint64(id) + (id.lsb() - 1)) }

// Contains reports whether other is id itself or one of its descendants.
// Thanks to the prefix encoding this is two comparisons (paper Sec. 3.1).
func (id ID) Contains(other ID) bool {
	return other >= id.RangeMin() && other <= id.RangeMax()
}

// Intersects reports whether the cells id and other share any leaf cell,
// i.e. one contains the other.
func (id ID) Intersects(other ID) bool {
	return other.RangeMin() <= id.RangeMax() && other.RangeMax() >= id.RangeMin()
}

// Next returns the next cell at the same level in Hilbert order. Iterating
// with Next past the last cell of a level yields invalid ids; use the level
// bounds to stop.
func (id ID) Next() ID { return ID(uint64(id) + id.lsb()<<1) }

// Prev returns the previous cell at the same level in Hilbert order.
func (id ID) Prev() ID { return ID(uint64(id) - id.lsb()<<1) }

// ChildPosition returns which child (0-3) of its immediate parent this cell
// is. It must not be called on the root.
func (id ID) ChildPosition() int {
	return int(uint64(id)>>(uint(bits.TrailingZeros64(uint64(id)))+1)) & 3
}

// Root returns the level-0 cell covering the whole domain.
func Root() ID { return ID(1) << (2 * MaxLevel) }

// Begin returns the first cell at the given level in Hilbert order.
func Begin(level int) ID { return Root().ChildBeginAt(level) }

// End returns the id one past the last cell at the given level; it is not a
// valid cell itself and is only meaningful as an iteration bound.
func End(level int) ID { return Root().ChildEndAt(level).Next() }

// NumCells returns the number of cells at the given level (4^level).
func NumCells(level int) uint64 { return 1 << uint(2*level) }

// String renders the id as a level-tagged hex token.
func (id ID) String() string {
	if !id.IsValid() {
		return "Invalid"
	}
	return fmt.Sprintf("L%d/%#x", id.Level(), uint64(id))
}

// CommonAncestorLevel returns the level of the deepest common ancestor of
// id and other, and false when the ids are invalid.
func (id ID) CommonAncestorLevel(other ID) (int, bool) {
	if !id.IsValid() || !other.IsValid() {
		return 0, false
	}
	// Align both to leaf-centre representation and find the highest
	// differing bit.
	x := uint64(id) ^ uint64(other)
	if x == 0 {
		return min(id.Level(), other.Level()), true
	}
	msb := 63 - bits.LeadingZeros64(x)
	// Each level consumes two bits starting below bit 2*MaxLevel.
	lvl := (2*MaxLevel - msb - 1) / 2
	if lvl < 0 {
		return 0, false
	}
	if m := min(id.Level(), other.Level()); lvl > m {
		lvl = m
	}
	return lvl, true
}
