package cellid

import (
	"fmt"
	"math"

	"geoblocks/internal/geom"
)

// Domain maps a rectangular region of the plane onto the unit square that
// the cell hierarchy subdivides. The paper applies S2's decomposition to the
// Earth's surface; GeoBlocks datasets are regional (NYC, the contiguous US,
// the Americas), so a planar domain anchored at the dataset's bounding box
// preserves every property the algorithms use while keeping coordinates
// exact. Domain values are immutable and safe for concurrent use.
type Domain struct {
	bound geom.Rect
	// Precomputed scale factors from domain units to leaf grid units.
	scaleX, scaleY float64
}

// maxCoord is the number of leaf cells along each axis.
const maxCoord = 1 << MaxLevel

// NewDomain creates a domain over the given bounding rectangle. The
// rectangle must have positive extent in both dimensions.
func NewDomain(bound geom.Rect) (Domain, error) {
	if !(bound.Width() > 0) || !(bound.Height() > 0) {
		return Domain{}, fmt.Errorf("cellid: domain must have positive extent, got %v", bound)
	}
	return Domain{
		bound:  bound,
		scaleX: maxCoord / bound.Width(),
		scaleY: maxCoord / bound.Height(),
	}, nil
}

// MustDomain is NewDomain that panics on invalid input; intended for
// package-level dataset constants.
func MustDomain(bound geom.Rect) Domain {
	d, err := NewDomain(bound)
	if err != nil {
		panic(err)
	}
	return d
}

// Bound returns the rectangle the domain covers.
func (d Domain) Bound() geom.Rect { return d.bound }

// IsZero reports whether d is the zero (unconfigured) domain.
func (d Domain) IsZero() bool { return d.scaleX == 0 }

// LeafIJ maps p to leaf-level grid coordinates, clamping points outside the
// domain onto its border. Clamping mirrors the extract phase's outlier
// handling: points outside the configured region snap to the boundary and
// are typically filtered out beforehand.
func (d Domain) LeafIJ(p geom.Point) (i, j uint32) {
	i = clampCoord((p.X - d.bound.Min.X) * d.scaleX)
	j = clampCoord((p.Y - d.bound.Min.Y) * d.scaleY)
	return i, j
}

func clampCoord(f float64) uint32 {
	if f < 0 {
		return 0
	}
	if f >= maxCoord {
		return maxCoord - 1
	}
	return uint32(f)
}

// FromPoint returns the leaf cell containing p.
func (d Domain) FromPoint(p geom.Point) ID {
	i, j := d.LeafIJ(p)
	return FromIJ(i, j, MaxLevel)
}

// CellAt returns the level-cell containing p.
func (d Domain) CellAt(p geom.Point, level int) ID {
	return d.FromPoint(p).Parent(level)
}

// CellRect returns the rectangle in domain coordinates covered by id.
func (d Domain) CellRect(id ID) geom.Rect {
	i, j := id.IJ()
	return d.CellRectAt(i, j, id.Level())
}

// CellRectAt returns the rectangle covered by the level-cell with grid
// coordinates (i, j) — CellRect without the Hilbert decode, for callers
// that already track grid coordinates. Bit-identical to CellRect of the
// corresponding id.
func (d Domain) CellRectAt(i, j uint32, level int) geom.Rect {
	// Width of one cell at this level, in leaf units.
	span := uint32(1) << uint(MaxLevel-level)
	// Convert leaf units back to domain units.
	x0 := d.bound.Min.X + float64(uint64(i)*uint64(span))/maxCoord*d.bound.Width()
	y0 := d.bound.Min.Y + float64(uint64(j)*uint64(span))/maxCoord*d.bound.Height()
	x1 := d.bound.Min.X + float64(uint64(i+1)*uint64(span))/maxCoord*d.bound.Width()
	y1 := d.bound.Min.Y + float64(uint64(j+1)*uint64(span))/maxCoord*d.bound.Height()
	return geom.Rect{Min: geom.Pt(x0, y0), Max: geom.Pt(x1, y1)}
}

// CellCenter returns the centre of id's rectangle in domain coordinates.
func (d Domain) CellCenter(id ID) geom.Point {
	return d.CellRect(id).Center()
}

// CellDiagonal returns the diagonal length of a cell at the given level, in
// domain units. This is the user-controllable error bound of a covering at
// that level (paper Sec. 3.2): every point of the covering is within one
// cell diagonal of the polygon outline.
func (d Domain) CellDiagonal(level int) float64 {
	w := d.bound.Width() / float64(uint64(1)<<uint(level))
	h := d.bound.Height() / float64(uint64(1)<<uint(level))
	return math.Hypot(w, h)
}

// MaxDiagonal returns the diagonal of the coarsest cell among cells — the
// conservative guaranteed error bound of a bare covering whose interior
// flags are unknown. It returns 0 for an empty slice.
func (d Domain) MaxDiagonal(cells []ID) float64 {
	coarsest := -1
	for _, id := range cells {
		if l := id.Level(); coarsest < 0 || l < coarsest {
			coarsest = l
		}
	}
	if coarsest < 0 {
		return 0
	}
	return d.CellDiagonal(coarsest)
}

// LevelForMaxDiagonal returns the coarsest level whose cell diagonal does
// not exceed maxDiagonal, i.e. the cheapest level meeting the user's error
// bound. It returns MaxLevel when even leaves are larger than requested.
func (d Domain) LevelForMaxDiagonal(maxDiagonal float64) int {
	for level := 0; level <= MaxLevel; level++ {
		if d.CellDiagonal(level) <= maxDiagonal {
			return level
		}
	}
	return MaxLevel
}
