package cellid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"geoblocks/internal/geom"
)

func TestRootProperties(t *testing.T) {
	r := Root()
	if !r.IsValid() {
		t.Fatalf("root invalid")
	}
	if r.Level() != 0 {
		t.Fatalf("root level = %d, want 0", r.Level())
	}
	if r.IsLeaf() {
		t.Fatalf("root must not be a leaf")
	}
	if r.Pos() != 0 {
		t.Fatalf("root pos = %d, want 0", r.Pos())
	}
}

func TestFromPosRoundTrip(t *testing.T) {
	for _, level := range []int{0, 1, 2, 5, 11, 17, 30} {
		n := uint64(1) << uint(2*level)
		step := n/1000 + 1
		for pos := uint64(0); pos < n; pos += step {
			id := FromPos(pos, level)
			if !id.IsValid() {
				t.Fatalf("level %d pos %d: invalid id", level, pos)
			}
			if got := id.Level(); got != level {
				t.Fatalf("level %d pos %d: Level() = %d", level, pos, got)
			}
			if got := id.Pos(); got != pos {
				t.Fatalf("level %d pos %d: Pos() = %d", level, pos, got)
			}
		}
	}
}

func TestIJRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, level := range []int{1, 2, 7, 15, 30} {
		max := uint32(1) << uint(level)
		for trial := 0; trial < 500; trial++ {
			i := rng.Uint32() % max
			j := rng.Uint32() % max
			id := FromIJ(i, j, level)
			gi, gj := id.IJ()
			if gi != i || gj != j {
				t.Fatalf("level %d: FromIJ(%d,%d).IJ() = (%d,%d)", level, i, j, gi, gj)
			}
		}
	}
}

func TestHilbertIsBijectiveAtSmallLevels(t *testing.T) {
	for level := uint(0); level <= 6; level++ {
		n := uint32(1) << level
		seen := make(map[uint64]bool, int(n)*int(n))
		for i := uint32(0); i < n; i++ {
			for j := uint32(0); j < n; j++ {
				pos := ijToPos(i, j, level)
				if pos >= uint64(n)*uint64(n) {
					t.Fatalf("level %d: pos %d out of range", level, pos)
				}
				if seen[pos] {
					t.Fatalf("level %d: pos %d visited twice", level, pos)
				}
				seen[pos] = true
				ri, rj := posToIJ(pos, level)
				if ri != i || rj != j {
					t.Fatalf("level %d: (%d,%d) -> %d -> (%d,%d)", level, i, j, pos, ri, rj)
				}
			}
		}
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// Consecutive positions on a Hilbert curve are adjacent grid cells:
	// this is the locality property that makes the sorted aggregate layout
	// scan-friendly.
	for level := uint(1); level <= 8; level++ {
		n := uint64(1) << (2 * level)
		pi, pj := posToIJ(0, level)
		for pos := uint64(1); pos < n; pos++ {
			i, j := posToIJ(pos, level)
			di := int64(i) - int64(pi)
			dj := int64(j) - int64(pj)
			if di*di+dj*dj != 1 {
				t.Fatalf("level %d: pos %d at (%d,%d) not adjacent to pos %d at (%d,%d)",
					level, pos, i, j, pos-1, pi, pj)
			}
			pi, pj = i, j
		}
	}
}

func TestParentChildRelations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		level := 1 + rng.Intn(MaxLevel)
		pos := rng.Uint64() % NumCells(level)
		id := FromPos(pos, level)

		parent := id.ImmediateParent()
		if parent.Level() != level-1 {
			t.Fatalf("parent level = %d, want %d", parent.Level(), level-1)
		}
		if !parent.Contains(id) {
			t.Fatalf("parent %v does not contain child %v", parent, id)
		}
		if id.Parent(level-1) != parent {
			t.Fatalf("Parent(level-1) != ImmediateParent")
		}
		// id must be one of parent's children, at index ChildPosition.
		children := parent.Children()
		found := -1
		for k, c := range children {
			if c == id {
				found = k
			}
			if c.ImmediateParent() != parent {
				t.Fatalf("child %v has parent %v, want %v", c, c.ImmediateParent(), parent)
			}
			if c.Level() != level {
				t.Fatalf("child level = %d, want %d", c.Level(), level)
			}
		}
		if found == -1 {
			t.Fatalf("id %v not among children of %v", id, parent)
		}
		if got := id.ChildPosition(); got != found {
			t.Fatalf("ChildPosition = %d, want %d", got, found)
		}
	}
}

func TestRangeNesting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		level := rng.Intn(MaxLevel) // strictly above leaf
		id := FromPos(rng.Uint64()%NumCells(level), level)
		min, max := id.RangeMin(), id.RangeMax()
		if !min.IsLeaf() || !max.IsLeaf() {
			t.Fatalf("range bounds must be leaves: %v %v", min, max)
		}
		for _, c := range id.Children() {
			if c.RangeMin() < min || c.RangeMax() > max {
				t.Fatalf("child range [%v,%v] escapes parent range [%v,%v]",
					c.RangeMin(), c.RangeMax(), min, max)
			}
		}
		// Children ranges tile the parent range exactly.
		ch := id.Children()
		if ch[0].RangeMin() != min || ch[3].RangeMax() != max {
			t.Fatalf("children do not start/end at parent range bounds")
		}
		for k := 0; k < 3; k++ {
			if uint64(ch[k].RangeMax())+2 != uint64(ch[k+1].RangeMin()) {
				t.Fatalf("children %d and %d ranges not contiguous", k, k+1)
			}
		}
	}
}

func TestContainsIsPrefixContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 2000; trial++ {
		lvlA := rng.Intn(MaxLevel + 1)
		a := FromPos(rng.Uint64()%NumCells(lvlA), lvlA)
		lvlB := rng.Intn(MaxLevel + 1)
		b := FromPos(rng.Uint64()%NumCells(lvlB), lvlB)

		want := lvlB >= lvlA && b.Parent(lvlA) == a
		if got := a.Contains(b); got != want {
			t.Fatalf("%v.Contains(%v) = %t, want %t", a, b, got, want)
		}
		wantInter := a.Contains(b) || b.Contains(a)
		if got := a.Intersects(b); got != wantInter {
			t.Fatalf("%v.Intersects(%v) = %t, want %t", a, b, got, wantInter)
		}
	}
}

func TestChildBeginEndAt(t *testing.T) {
	id := Root()
	for level := 0; level <= MaxLevel; level += 5 {
		begin := id.ChildBeginAt(level)
		end := id.ChildEndAt(level)
		if begin.Level() != level || end.Level() != level {
			t.Fatalf("level %d: begin/end levels %d/%d", level, begin.Level(), end.Level())
		}
		if begin.Pos() != 0 {
			t.Fatalf("level %d: begin pos %d", level, begin.Pos())
		}
		if end.Pos() != NumCells(level)-1 {
			t.Fatalf("level %d: end pos %d", level, end.Pos())
		}
	}

	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		lvl := rng.Intn(20)
		id := FromPos(rng.Uint64()%NumCells(lvl), lvl)
		maxGap := MaxLevel - lvl
		if maxGap > 5 {
			maxGap = 5 // keep the exhaustive child walk below 4^5 cells
		}
		sub := lvl + 1 + rng.Intn(maxGap)
		begin, end := id.ChildBeginAt(sub), id.ChildEndAt(sub)
		if begin.RangeMin() != id.RangeMin() {
			t.Fatalf("first child at level %d does not align with parent range min", sub)
		}
		if end.RangeMax() != id.RangeMax() {
			t.Fatalf("last child at level %d does not align with parent range max", sub)
		}
		want := NumCells(sub - lvl)
		n := uint64(0)
		for c := begin; ; c = c.Next() {
			n++
			if c == end {
				break
			}
			if n > want {
				t.Fatalf("overran children: %d > %d", n, want)
			}
		}
		if n != want {
			t.Fatalf("child count at level %d = %d, want %d", sub, n, want)
		}
	}
}

func TestNextPrev(t *testing.T) {
	id := Begin(8)
	for k := 0; k < 100; k++ {
		next := id.Next()
		if next.Prev() != id {
			t.Fatalf("Prev(Next(%v)) != id", id)
		}
		if next.Pos() != id.Pos()+1 {
			t.Fatalf("Next pos = %d, want %d", next.Pos(), id.Pos()+1)
		}
		id = next
	}
}

func TestQuickOrderPreservation(t *testing.T) {
	// Cell id order at a fixed level equals Hilbert position order: the
	// sorted aggregate layout depends on this.
	f := func(p1, p2 uint32) bool {
		const level = 16
		a := FromPos(uint64(p1)%NumCells(level), level)
		b := FromPos(uint64(p2)%NumCells(level), level)
		return (a < b) == (a.Pos() < b.Pos())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParentContainsPoint(t *testing.T) {
	dom := MustDomain(geom.Rect{Min: geom.Pt(-74.3, 40.5), Max: geom.Pt(-73.7, 40.95)})
	f := func(fx, fy uint16, lvl8 uint8) bool {
		level := int(lvl8) % (MaxLevel + 1)
		p := geom.Pt(
			dom.Bound().Min.X+float64(fx)/65536*dom.Bound().Width(),
			dom.Bound().Min.Y+float64(fy)/65536*dom.Bound().Height(),
		)
		leaf := dom.FromPoint(p)
		cell := dom.CellAt(p, level)
		if !cell.Contains(leaf) {
			return false
		}
		// The cell rectangle must contain the point.
		return dom.CellRect(cell).ContainsPoint(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDomainCellRectTiling(t *testing.T) {
	dom := MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(16, 16)})
	// At level 2 the 16 cells must tile the domain without gaps/overlap.
	level := 2
	total := 0.0
	for id := Begin(level); ; id = id.Next() {
		r := dom.CellRect(id)
		if r.Width() != 4 || r.Height() != 4 {
			t.Fatalf("cell %v rect %v, want 4x4", id, r)
		}
		total += r.Area()
		if id == End(level).Prev() {
			break
		}
	}
	if total != 256 {
		t.Fatalf("tiled area = %g, want 256", total)
	}
}

func TestCellDiagonalHalvesPerLevel(t *testing.T) {
	dom := MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 50)})
	for level := 0; level < 20; level++ {
		d0 := dom.CellDiagonal(level)
		d1 := dom.CellDiagonal(level + 1)
		if ratio := d0 / d1; ratio < 1.999 || ratio > 2.001 {
			t.Fatalf("diagonal ratio level %d->%d = %g, want 2", level, level+1, ratio)
		}
	}
}

func TestLevelForMaxDiagonal(t *testing.T) {
	dom := MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1024, 1024)})
	for level := 0; level <= 20; level++ {
		diag := dom.CellDiagonal(level)
		got := dom.LevelForMaxDiagonal(diag)
		if got != level {
			t.Fatalf("LevelForMaxDiagonal(%g) = %d, want %d", diag, got, level)
		}
		// A slightly smaller bound must move one level deeper.
		if got := dom.LevelForMaxDiagonal(diag * 0.999); got != level+1 && level != MaxLevel {
			t.Fatalf("LevelForMaxDiagonal(%g) = %d, want %d", diag*0.999, got, level+1)
		}
	}
}

func TestCommonAncestorLevel(t *testing.T) {
	a := Root().Children()[0]
	b := Root().Children()[1]
	lvl, ok := a.CommonAncestorLevel(b)
	if !ok || lvl != 0 {
		t.Fatalf("siblings common ancestor level = %d,%t want 0,true", lvl, ok)
	}
	c := a.Children()[2]
	lvl, ok = a.CommonAncestorLevel(c)
	if !ok || lvl != 1 {
		t.Fatalf("parent/child common ancestor level = %d,%t want 1,true", lvl, ok)
	}
	lvl, ok = c.CommonAncestorLevel(c)
	if !ok || lvl != 2 {
		t.Fatalf("self common ancestor level = %d,%t want 2,true", lvl, ok)
	}
}

func TestInvalidIDs(t *testing.T) {
	if ID(0).IsValid() {
		t.Fatal("zero id must be invalid")
	}
	if ID(1 << 63).IsValid() {
		t.Fatal("id above root must be invalid")
	}
	// Sentinel at odd bit position.
	if ID(0b10).IsValid() {
		t.Fatal("odd sentinel must be invalid")
	}
}

func TestNewDomainValidation(t *testing.T) {
	if _, err := NewDomain(geom.Rect{}); err == nil {
		t.Fatal("empty domain must be rejected")
	}
	if _, err := NewDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 0)}); err == nil {
		t.Fatal("zero-height domain must be rejected")
	}
	if _, err := NewDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}); err != nil {
		t.Fatalf("valid domain rejected: %v", err)
	}
}

func TestDomainClamping(t *testing.T) {
	dom := MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)})
	// Outside points clamp to the border instead of wrapping.
	for _, p := range []geom.Point{geom.Pt(-5, 0.5), geom.Pt(5, 0.5), geom.Pt(0.5, -5), geom.Pt(0.5, 5)} {
		id := dom.FromPoint(p)
		if !id.IsValid() {
			t.Fatalf("clamped id for %v invalid", p)
		}
		r := dom.CellRect(id.Parent(0))
		if r != dom.Bound() {
			t.Fatalf("root rect mismatch")
		}
	}
}
