package cellid

// Hilbert curve conversions between 2D grid coordinates and 1D curve
// positions. The paper enumerates cells with S2's Hilbert ordering
// (Fig. 3); any order-preserving space-filling curve works, and we use the
// classic iterative Hilbert construction.
//
// The curve is hierarchical: the first 2L bits of a leaf position identify
// the level-L ancestor's position, which is what makes parent/child ids
// share prefixes.

// ijToPos converts grid coordinates (i, j) at the given level to the
// Hilbert curve position among the 4^level cells of that level.
func ijToPos(i, j uint32, level uint) uint64 {
	var pos uint64
	x, y := i, j
	for s := uint32(1) << (level - 1); s > 0; s >>= 1 {
		if level == 0 {
			break
		}
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		pos += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - (x & (s - 1)) // reflect within remaining bits
				y = s - 1 - (y & (s - 1))
			} else {
				x &= s - 1
				y &= s - 1
			}
			x, y = y, x
		} else {
			x &= s - 1
			y &= s - 1
		}
	}
	return pos
}

// posToIJ converts a Hilbert curve position at the given level back to grid
// coordinates.
func posToIJ(pos uint64, level uint) (i, j uint32) {
	var x, y uint32
	t := pos
	for s := uint32(1); s < 1<<level; s <<= 1 {
		rx := uint32(1 & (t / 2))
		ry := uint32(1 & (t ^ uint64(rx)))
		// Rotate.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}
