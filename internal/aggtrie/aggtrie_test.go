package aggtrie

import (
	"math"
	"math/rand"
	"testing"

	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/core"
	"geoblocks/internal/cover"
	"geoblocks/internal/geom"
)

func buildTestBlock(t testing.TB, n int, level int, seed int64) *core.GeoBlock {
	t.Helper()
	dom := cellid.MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)})
	schema := column.NewSchema("fare", "distance")
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			pts[i] = geom.Pt(40+rng.NormFloat64()*8, 55+rng.NormFloat64()*8)
		} else {
			pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		cols[0][i] = rng.Float64() * 80
		cols[1][i] = rng.Float64() * 15
	}
	base, _, err := core.Extract(dom, pts, schema, cols, core.CleanRule{}, -1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Build(base, core.BuildOptions{Level: level})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func testCovering(b *core.GeoBlock, poly *geom.Polygon) []cellid.ID {
	c := cover.MustCoverer(b.Domain(), cover.DefaultOptions(b.Level()))
	return c.Cover(poly).Cells
}

func queryPolys() []*geom.Polygon {
	return []*geom.Polygon{
		geom.NewPolygon([]geom.Point{geom.Pt(30, 40), geom.Pt(55, 35), geom.Pt(60, 65), geom.Pt(35, 70)}),
		geom.NewPolygon([]geom.Point{geom.Pt(10, 10), geom.Pt(30, 12), geom.Pt(25, 30)}),
		geom.NewPolygon([]geom.Point{geom.Pt(60, 60), geom.Pt(90, 62), geom.Pt(88, 90), geom.Pt(62, 88)}),
		geom.RegularPolygon(geom.Pt(45, 50), 20, 7),
	}
}

func allSpecs() []core.AggSpec {
	return []core.AggSpec{
		{Func: core.AggCount},
		{Col: 0, Func: core.AggSum},
		{Col: 0, Func: core.AggMin},
		{Col: 1, Func: core.AggMax},
		{Col: 1, Func: core.AggAvg},
	}
}

func approxEqual(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-9 || d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func TestTrieLookupMatchesAggregateCell(t *testing.T) {
	b := buildTestBlock(t, 20000, 12, 1)
	// Cache a spread of cells at different levels.
	root := enclosingRoot(b)
	cells := []cellid.ID{root}
	for _, c := range root.Children() {
		cells = append(cells, c)
		cells = append(cells, c.Children()[1])
	}
	trie := BuildTrie(b, cells, 1<<20)
	if err := trie.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, cell := range cells {
		count, cols, ok := trie.Lookup(cell)
		if !ok {
			t.Fatalf("cell %v not cached", cell)
		}
		wantCount, wantCols := b.AggregateCell(cell)
		if count != wantCount {
			t.Fatalf("cell %v count = %d, want %d", cell, count, wantCount)
		}
		for c := range cols {
			if !approxEqual(cols[c].Sum, wantCols[c].Sum) || cols[c].Min != wantCols[c].Min || cols[c].Max != wantCols[c].Max {
				t.Fatalf("cell %v col %d record differs", cell, c)
			}
		}
	}
}

func TestTrieBudgetRespected(t *testing.T) {
	b := buildTestBlock(t, 20000, 14, 2)
	root := enclosingRoot(b)
	// Generate many candidate cells.
	var cells []cellid.ID
	for _, c1 := range root.Children() {
		for _, c2 := range c1.Children() {
			for _, c3 := range c2.Children() {
				cells = append(cells, c3)
			}
		}
	}
	for _, budget := range []int{64, 256, 1024, 4096, 1 << 20} {
		trie := BuildTrie(b, cells, budget)
		if err := trie.Validate(); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if trie.SizeBytes() > budget && trie.NumCached() > 0 {
			t.Fatalf("budget %d: size %d exceeds budget", budget, trie.SizeBytes())
		}
	}
	// A big budget caches everything.
	trie := BuildTrie(b, cells, 1<<24)
	if trie.NumCached() != len(cells) {
		t.Fatalf("unlimited budget cached %d of %d cells", trie.NumCached(), len(cells))
	}
}

func TestTrieNodeBlocksOfFour(t *testing.T) {
	b := buildTestBlock(t, 5000, 12, 3)
	root := enclosingRoot(b)
	cells := []cellid.ID{root.Children()[2].Children()[3]}
	trie := BuildTrie(b, cells, 1<<20)
	if err := trie.Validate(); err != nil {
		t.Fatal(err)
	}
	// Root + two levels of child blocks = 1 + 4 + 4.
	if got := trie.NumNodes(); got != 9 {
		t.Fatalf("node count = %d, want 9", got)
	}
	if got := trie.NumCached(); got != 1 {
		t.Fatalf("cached = %d, want 1", got)
	}
}

func TestTrieSkipsDuplicatesAndForeignCells(t *testing.T) {
	// Confine all data to one quadrant so the enclosing root is below the
	// hierarchy root and foreign (coarser) cells exist.
	dom := cellid.MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)})
	schema := column.NewSchema("v")
	rng := rand.New(rand.NewSource(4))
	var pts []geom.Point
	var vals []float64
	for i := 0; i < 2000; i++ {
		pts = append(pts, geom.Pt(rng.Float64()*20, rng.Float64()*20))
		vals = append(vals, rng.Float64())
	}
	base, _, err := core.Extract(dom, pts, schema, [][]float64{vals}, core.CleanRule{}, -1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Build(base, core.BuildOptions{Level: 12})
	if err != nil {
		t.Fatal(err)
	}
	root := enclosingRoot(b)
	if root.Level() == 0 {
		t.Fatal("test setup: data should not span the whole domain")
	}
	child := root.Children()[0]
	foreign := cellid.Root() // coarser than the enclosing root: not cacheable
	trie := BuildTrie(b, []cellid.ID{child, child, foreign}, 1<<20)
	if got := trie.NumCached(); got != 1 {
		t.Fatalf("cached = %d, want 1 (duplicate and foreign skipped)", got)
	}
}

func TestStatsRecordAndRanking(t *testing.T) {
	root := cellid.Root().Children()[0]
	s := NewStats(root)
	a := root.Children()[0]
	bCell := root.Children()[1]
	aChild := a.Children()[2]

	for i := 0; i < 5; i++ {
		s.Record([]cellid.ID{a})
	}
	for i := 0; i < 3; i++ {
		s.Record([]cellid.ID{bCell})
	}
	s.Record([]cellid.ID{aChild})

	if s.Hits(a) != 5 || s.Hits(bCell) != 3 || s.Hits(aChild) != 1 {
		t.Fatalf("hit counts wrong: %d %d %d", s.Hits(a), s.Hits(bCell), s.Hits(aChild))
	}

	ranked := s.RankedCells()
	// aChild scores 1 + parent(5) = 6 > a (5 + root hits 0) > bCell (3).
	if ranked[0] != aChild {
		t.Fatalf("ranked[0] = %v, want child with parent-transfer score", ranked[0])
	}
	if ranked[1] != a || ranked[2] != bCell {
		t.Fatalf("ranking = %v", ranked)
	}

	// Own-hits ranking puts a first.
	own := s.RankedCellsOwnHitsOnly()
	if own[0] != a {
		t.Fatalf("own-hits ranked[0] = %v, want a", own[0])
	}
}

func TestStatsTieBreaks(t *testing.T) {
	root := cellid.Root()
	s := NewStats(root)
	coarse := root.Children()[1]
	fine := root.Children()[0].Children()[0]
	s.Record([]cellid.ID{coarse, fine})
	ranked := s.RankedCells()
	// Equal scores: coarser level first.
	if ranked[0] != coarse {
		t.Fatalf("tie break by level failed: %v", ranked)
	}

	// Equal score and level: ascending key.
	s2 := NewStats(root)
	c1, c2 := root.Children()[2], root.Children()[1]
	s2.Record([]cellid.ID{c1, c2})
	r2 := s2.RankedCells()
	if r2[0] != c2 || r2[1] != c1 {
		t.Fatalf("tie break by key failed: %v", r2)
	}
}

func TestStatsIgnoresCellsOutsideRoot(t *testing.T) {
	root := cellid.Root().Children()[0]
	s := NewStats(root)
	s.Record([]cellid.ID{cellid.Root().Children()[1]}) // sibling of root
	if s.NumCells() != 0 {
		t.Fatal("foreign cell recorded")
	}
}

func TestCachedSelectEqualsPlainSelect(t *testing.T) {
	b := buildTestBlock(t, 30000, 13, 5)
	cb := New(b, 1<<20)
	specs := allSpecs()

	coverings := make([][]cellid.ID, 0)
	for _, p := range queryPolys() {
		coverings = append(coverings, testCovering(b, p))
	}

	// Cold cache, then warm after refreshes — results must never change.
	for round := 0; round < 3; round++ {
		for qi, cov := range coverings {
			want, err := b.SelectCovering(cov, specs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cb.Select(cov, specs)
			if err != nil {
				t.Fatal(err)
			}
			if got.Count != want.Count {
				t.Fatalf("round %d query %d: count %d, want %d", round, qi, got.Count, want.Count)
			}
			for i := range got.Values {
				if !approxEqual(got.Values[i], want.Values[i]) {
					t.Fatalf("round %d query %d value %d: %g, want %g", round, qi, i, got.Values[i], want.Values[i])
				}
			}
		}
		cb.Refresh()
		if err := cb.Trie().Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCacheHitsAfterRefresh(t *testing.T) {
	b := buildTestBlock(t, 20000, 13, 6)
	cb := New(b, 1<<22)
	specs := allSpecs()
	cov := testCovering(b, queryPolys()[0])

	if _, err := cb.Select(cov, specs); err != nil {
		t.Fatal(err)
	}
	m := cb.Metrics()
	if m.FullHits != 0 {
		t.Fatalf("cold cache produced %d full hits", m.FullHits)
	}

	cb.Refresh()
	cb.ResetMetrics()
	if _, err := cb.Select(cov, specs); err != nil {
		t.Fatal(err)
	}
	m = cb.Metrics()
	// Only coarse cells are probed: covering cells at or near the block
	// level hold too few aggregates to beat the direct scan and bypass
	// the cache.
	coarse := uint64(0)
	for _, qc := range cov {
		if qc.Level() <= b.Level()-probeMargin {
			coarse++
		}
	}
	if coarse == 0 {
		t.Fatal("test covering has no coarse cells")
	}
	if m.Probes != coarse {
		t.Fatalf("probes = %d, want %d coarse cells", m.Probes, coarse)
	}
	if m.FullHits != coarse {
		t.Fatalf("warm cache full hits = %d, want %d", m.FullHits, coarse)
	}
	if got := m.HitRate(); got != 1 {
		t.Fatalf("hit rate = %g, want 1", got)
	}
}

func TestPartialHitViaCachedChildren(t *testing.T) {
	b := buildTestBlock(t, 20000, 13, 7)
	root := enclosingRoot(b)
	parent := root.Children()[0]
	children := parent.Children()

	// Cache two of the four children explicitly.
	trie := BuildTrie(b, []cellid.ID{children[0], children[2]}, 1<<20)
	cb := New(b, 1<<20)
	cb.trie.Store(trie)

	res, err := cb.Select([]cellid.ID{parent}, allSpecs())
	if err != nil {
		t.Fatal(err)
	}
	m := cb.Metrics()
	if m.PartialHits != 1 {
		t.Fatalf("partial hits = %d, want 1", m.PartialHits)
	}
	want, err := b.SelectCovering([]cellid.ID{parent}, allSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want.Count {
		t.Fatalf("partial-hit count = %d, want %d", res.Count, want.Count)
	}
	for i := range res.Values {
		if !approxEqual(res.Values[i], want.Values[i]) {
			t.Fatalf("partial-hit value[%d] = %g, want %g", i, res.Values[i], want.Values[i])
		}
	}
}

func TestZeroBudgetNeverCaches(t *testing.T) {
	b := buildTestBlock(t, 10000, 12, 8)
	cb := New(b, 0)
	cov := testCovering(b, queryPolys()[0])
	for i := 0; i < 3; i++ {
		if _, err := cb.Select(cov, allSpecs()); err != nil {
			t.Fatal(err)
		}
		cb.Refresh()
	}
	if cb.Trie().NumCached() != 0 {
		t.Fatalf("zero budget cached %d cells", cb.Trie().NumCached())
	}
	if cb.Metrics().FullHits != 0 {
		t.Fatal("zero budget produced hits")
	}
}

func TestThresholdBudget(t *testing.T) {
	b := buildTestBlock(t, 20000, 13, 9)
	cb, err := NewWithThreshold(b, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if want := int(0.05 * float64(b.SizeBytes())); cb.BudgetBytes() != want {
		t.Fatalf("budget = %d, want %d", cb.BudgetBytes(), want)
	}
	// After heavy skewed use and a refresh the trie must stay in budget.
	cov := testCovering(b, queryPolys()[0])
	for i := 0; i < 10; i++ {
		if _, err := cb.Select(cov, allSpecs()); err != nil {
			t.Fatal(err)
		}
	}
	cb.Refresh()
	if cb.Trie().SizeBytes() > cb.BudgetBytes() {
		t.Fatalf("trie size %d exceeds budget %d", cb.Trie().SizeBytes(), cb.BudgetBytes())
	}
}

func TestThresholdValidation(t *testing.T) {
	b := buildTestBlock(t, 2000, 10, 9)
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := NewWithThreshold(b, bad); err == nil {
			t.Fatalf("threshold %v accepted", bad)
		}
	}
	// Huge finite thresholds clamp instead of overflowing into a
	// negative (useless) budget.
	cb, err := NewWithThreshold(b, 1e300)
	if err != nil {
		t.Fatal(err)
	}
	if cb.BudgetBytes() <= 0 {
		t.Fatalf("budget overflowed to %d", cb.BudgetBytes())
	}
}

func TestCountDelegatesAndRecords(t *testing.T) {
	b := buildTestBlock(t, 20000, 13, 10)
	cb := New(b, 1<<20)
	cov := testCovering(b, queryPolys()[0])
	got := cb.Count(cov)
	want := b.CountCovering(cov)
	if got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	if cb.Stats().NumCells() == 0 {
		t.Fatal("COUNT did not record statistics")
	}
}

func TestOwnHitsAblationDiffersUnderParentSkew(t *testing.T) {
	b := buildTestBlock(t, 20000, 13, 11)
	root := enclosingRoot(b)
	parent := root.Children()[0]
	child := parent.Children()[1]

	s := NewStats(root)
	for i := 0; i < 10; i++ {
		s.Record([]cellid.ID{parent})
	}
	s.Record([]cellid.ID{child})

	withTransfer := s.RankedCells()
	ownOnly := s.RankedCellsOwnHitsOnly()
	// With parent transfer the child ties the parent at 11 vs 10 — child
	// scores 1+10=11, parent 10+rootHits. Child must come first.
	if withTransfer[0] != child {
		t.Fatalf("parent-transfer ranking = %v, want child first", withTransfer)
	}
	if ownOnly[0] != parent {
		t.Fatalf("own-hits ranking = %v, want parent first", ownOnly)
	}
}

func TestEnclosingRootCoversAllCells(t *testing.T) {
	b := buildTestBlock(t, 10000, 12, 12)
	root := enclosingRoot(b)
	h := b.Header()
	if !root.Contains(h.MinCell) || !root.Contains(h.MaxCell) {
		t.Fatal("root does not cover header extremes")
	}
}
