package aggtrie

import (
	"fmt"
	"math"

	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
)

// node is one trie node: childOff is the arena index of the node's first
// child (children are allocated as contiguous blocks of four), aggOff is
// the 1-based aggregate slot of the node's cell. Zero means absent.
type node struct {
	childOff uint32
	aggOff   uint32
}

// nodeBytes is the serialized size of a node (two 32-bit offsets, paper
// Fig. 7).
const nodeBytes = 8

// Trie is the arena-backed AggregateTrie. The zero Trie is empty; build
// one with BuildTrie.
type Trie struct {
	rootCell cellid.ID
	nodes    []node
	// Aggregate slots, 1-based: slot s occupies counts[s-1], ends[s-1]
	// and cols[(s-1)*numCols : s*numCols]. ends memoises the index one
	// past the cell's last aggregate in the block, letting cache hits
	// advance the scan cursor in constant time.
	counts  []uint64
	ends    []uint32
	cols    []core.ColAggregate
	numCols int
	// slotBytes is the accounted size of one aggregate record.
	slotBytes int
}

// RootCell returns the cell the trie root corresponds to: the smallest
// cell enclosing the block's data (paper Sec. 3.6: "the cell level that
// can enclose our input data").
func (t *Trie) RootCell() cellid.ID { return t.rootCell }

// NumNodes returns the number of allocated trie nodes.
func (t *Trie) NumNodes() int { return len(t.nodes) }

// NumCached returns the number of cached aggregate records.
func (t *Trie) NumCached() int { return len(t.counts) }

// SizeBytes returns the arena footprint: nodes plus aggregate slots. This
// is the quantity bounded by the cache budget (the paper's aggregate
// threshold).
func (t *Trie) SizeBytes() int {
	return len(t.nodes)*nodeBytes + len(t.counts)*t.slotBytes
}

// locate walks the trie from the root to the node for cell. It returns the
// node index and true, or false when the path does not exist. cell must be
// a descendant-or-self of the root cell.
//
// The walk reads the child steps directly from the cell id's Hilbert
// position bits: the low 2·depth bits of cell.Pos() are exactly the child
// positions below the root, two bits per level. The probe happens for
// every coarse covering cell of every cached query, so it must stay in the
// tens-of-nanoseconds range (the paper reports 58-81 ns lookups).
func (t *Trie) locate(cell cellid.ID) (int, bool) {
	if len(t.nodes) == 0 || !t.rootCell.Contains(cell) {
		return 0, false
	}
	depth := cell.Level() - t.rootCell.Level()
	pos := cell.Pos()
	idx := 0
	for d := depth - 1; d >= 0; d-- {
		childBlock := t.nodes[idx].childOff
		if childBlock == 0 {
			return 0, false
		}
		idx = int(childBlock) + int(pos>>uint(2*d))&3
	}
	return idx, true
}

// Lookup returns the cached aggregate record for cell, if present.
func (t *Trie) Lookup(cell cellid.ID) (count uint64, cols []core.ColAggregate, ok bool) {
	idx, found := t.locate(cell)
	if !found || t.nodes[idx].aggOff == 0 {
		return 0, nil, false
	}
	count, cols, _ = t.record(t.nodes[idx].aggOff)
	return count, cols, true
}

// record returns the slot's aggregate record and its memoised range end.
func (t *Trie) record(aggOff uint32) (uint64, []core.ColAggregate, int) {
	s := int(aggOff) - 1
	return t.counts[s], t.cols[s*t.numCols : (s+1)*t.numCols], int(t.ends[s])
}

// childState describes the cached direct children of a located node.
type childState struct {
	// present is true when the node has an allocated child block.
	present bool
	// cached[i] is the aggregate slot of child i (0 = not cached).
	cached [4]uint32
}

// children reports which direct children of cell carry cached aggregates.
func (t *Trie) children(nodeIdx int) childState {
	st := childState{}
	off := t.nodes[nodeIdx].childOff
	if off == 0 {
		return st
	}
	st.present = true
	for i := 0; i < 4; i++ {
		st.cached[i] = t.nodes[int(off)+i].aggOff
	}
	return st
}

// insertPathCost returns the bytes needed to insert cell: 4 nodes for
// every missing child block on the path plus one aggregate slot. It
// returns -1 when cell is already cached or outside the root.
func (t *Trie) insertPathCost(cell cellid.ID) int {
	if !t.rootCell.Contains(cell) {
		return -1
	}
	cost := t.slotBytes
	idx := 0
	for level := t.rootCell.Level() + 1; level <= cell.Level(); level++ {
		childBlock := t.nodes[idx].childOff
		if childBlock == 0 {
			// This block plus all deeper ones must be created.
			remaining := cell.Level() - level + 1
			return cost + remaining*4*nodeBytes
		}
		idx = int(childBlock) + cell.Parent(level).ChildPosition()
	}
	if t.nodes[idx].aggOff != 0 {
		return -1
	}
	return cost
}

// insert adds cell with the given aggregate record, allocating path nodes
// as needed. It must only be called after insertPathCost confirmed
// feasibility.
func (t *Trie) insert(cell cellid.ID, count uint64, cols []core.ColAggregate, end int) {
	idx := 0
	for level := t.rootCell.Level() + 1; level <= cell.Level(); level++ {
		if t.nodes[idx].childOff == 0 {
			off := uint32(len(t.nodes))
			t.nodes = append(t.nodes, node{}, node{}, node{}, node{})
			t.nodes[idx].childOff = off
		}
		idx = int(t.nodes[idx].childOff) + cell.Parent(level).ChildPosition()
	}
	t.counts = append(t.counts, count)
	t.ends = append(t.ends, uint32(end))
	t.cols = append(t.cols, cols...)
	t.nodes[idx].aggOff = uint32(len(t.counts)) // 1-based
}

// BuildTrie materialises a trie caching the given cells (already ordered
// by priority) over the block, stopping at the first cell whose insertion
// would exceed budgetBytes. Cells outside the block's enclosing root cell
// or duplicates are skipped.
func BuildTrie(b *core.GeoBlock, cells []cellid.ID, budgetBytes int) *Trie {
	t := &Trie{
		rootCell: enclosingRoot(b),
		numCols:  b.Schema().NumCols(),
		// Each slot additionally stores the 4-byte memoised range end.
		slotBytes: b.AggSlotBytes() + 4,
	}
	t.nodes = append(t.nodes, node{}) // root
	used := nodeBytes
	for _, cell := range cells {
		cost := t.insertPathCost(cell)
		if cost < 0 {
			continue
		}
		if used+cost > budgetBytes {
			break
		}
		count, cols, end := b.AggregateCellRange(cell)
		t.insert(cell, count, cols, end)
		used += cost
	}
	return t
}

// enclosingRoot returns the smallest cell containing all of the block's
// data, or the hierarchy root for empty blocks.
func enclosingRoot(b *core.GeoBlock) cellid.ID {
	h := b.Header()
	if h.Count == 0 {
		return cellid.Root()
	}
	lvl, ok := h.MinCell.CommonAncestorLevel(h.MaxCell)
	if !ok {
		return cellid.Root()
	}
	return h.MinCell.Parent(lvl)
}

// Validate checks structural invariants of the trie; tests use it after
// builds and it is cheap enough for debug assertions.
func (t *Trie) Validate() error {
	if len(t.nodes) == 0 {
		return nil
	}
	if (len(t.nodes)-1)%4 != 0 {
		return fmt.Errorf("aggtrie: node count %d is not 1+4k", len(t.nodes))
	}
	for i, n := range t.nodes {
		if n.childOff != 0 {
			if int(n.childOff)+3 >= len(t.nodes) {
				return fmt.Errorf("aggtrie: node %d child block %d out of range", i, n.childOff)
			}
			if int(n.childOff) <= i {
				return fmt.Errorf("aggtrie: node %d child block %d not forward", i, n.childOff)
			}
		}
		if n.aggOff != 0 && int(n.aggOff) > len(t.counts) {
			return fmt.Errorf("aggtrie: node %d aggregate slot %d out of range", i, n.aggOff)
		}
	}
	if len(t.cols) != len(t.counts)*t.numCols {
		return fmt.Errorf("aggtrie: cols length %d != %d slots × %d cols", len(t.cols), len(t.counts), t.numCols)
	}
	if len(t.ends) != len(t.counts) {
		return fmt.Errorf("aggtrie: ends length %d != %d slots", len(t.ends), len(t.counts))
	}
	for _, c := range t.counts {
		if c > math.MaxInt64 {
			return fmt.Errorf("aggtrie: implausible count %d", c)
		}
	}
	return nil
}
