package aggtrie

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
)

// CachedBlock is "BlockQC" from the paper's evaluation: a GeoBlock plus an
// AggregateTrie query cache and the adapted query algorithm of Fig. 8. The
// cache is rebuilt from observed query statistics on Refresh, within a
// fixed byte budget (the aggregate threshold).
//
// # Concurrency
//
// Any number of goroutines may call Select, Count, Metrics and the other
// read accessors concurrently, including while Refresh or MaybeRefresh
// runs: the trie is published through an atomic pointer and swapped
// wholesale after a copy-on-write rebuild, so readers only ever observe a
// fully built cache; effectiveness counters are atomic; and query
// statistics are striped across independently locked shards. Refresh and
// MaybeRefresh serialise among themselves. The configuration fields
// (ScoreOwnHitsOnly, DeriveFromSiblings) must be set before the block is
// shared.
type CachedBlock struct {
	block  *core.GeoBlock
	stats  *ShardedStats
	budget int

	// trie is the published cache. Refresh builds a replacement off to
	// the side and stores it here; in-flight queries keep reading the
	// trie they loaded at entry.
	trie atomic.Pointer[Trie]

	// refreshMu serialises cache rebuilds so concurrent MaybeRefresh
	// calls do not duplicate the (expensive) build work.
	refreshMu sync.Mutex

	// ScoreOwnHitsOnly switches to the ablation ranking that ignores
	// parent hits (DESIGN.md Sec. 5).
	ScoreOwnHitsOnly bool

	// DeriveFromSiblings enables the paper's future-work extension: an
	// uncached cell whose parent and all three siblings are cached is
	// answered as parent − siblings. Only count/sum/avg queries qualify
	// (min/max are not invertible).
	DeriveFromSiblings bool

	metrics atomicMetrics
	// sinceRefresh counts probe outcomes since the last Refresh, driving
	// the MaybeRefresh policy. Unlike metrics it is not caller-resettable.
	sinceRefresh atomicMetrics
}

// Metrics are cache effectiveness counters, reset with ResetMetrics.
type Metrics struct {
	// Probes counts query cells that went through the cache probe.
	Probes uint64
	// FullHits counts query cells answered entirely by one cached record.
	FullHits uint64
	// PartialHits counts query cells answered by a mix of cached direct
	// children and aggregate scans.
	PartialHits uint64
	// Misses counts query cells answered by the unmodified algorithm.
	Misses uint64
	// DerivedHits counts query cells answered by sibling derivation
	// (parent − siblings), when enabled.
	DerivedHits uint64
}

// HitRate returns the full-hit fraction over all probes, the quantity
// plotted in paper Fig. 18.
func (m Metrics) HitRate() float64 {
	if m.Probes == 0 {
		return 0
	}
	return float64(m.FullHits) / float64(m.Probes)
}

// atomicMetrics is the lock-free counterpart of Metrics, updated by
// concurrent queries and snapshotted on read. Each counter is read
// atomically but the snapshot as a whole is not a consistent cut; under
// concurrency the fields can be skewed by in-flight queries, which is
// fine for the rate-based decisions they drive.
type atomicMetrics struct {
	probes      atomic.Uint64
	fullHits    atomic.Uint64
	partialHits atomic.Uint64
	misses      atomic.Uint64
	derivedHits atomic.Uint64
}

// add folds a per-call delta into the counters. Queries batch their
// updates into one add per Select, keeping the per-cell hot loop free of
// atomic operations.
func (m *atomicMetrics) add(d Metrics) {
	if d.Probes != 0 {
		m.probes.Add(d.Probes)
	}
	if d.FullHits != 0 {
		m.fullHits.Add(d.FullHits)
	}
	if d.PartialHits != 0 {
		m.partialHits.Add(d.PartialHits)
	}
	if d.Misses != 0 {
		m.misses.Add(d.Misses)
	}
	if d.DerivedHits != 0 {
		m.derivedHits.Add(d.DerivedHits)
	}
}

func (m *atomicMetrics) snapshot() Metrics {
	return Metrics{
		Probes:      m.probes.Load(),
		FullHits:    m.fullHits.Load(),
		PartialHits: m.partialHits.Load(),
		Misses:      m.misses.Load(),
		DerivedHits: m.derivedHits.Load(),
	}
}

func (m *atomicMetrics) reset() {
	m.probes.Store(0)
	m.fullHits.Store(0)
	m.partialHits.Store(0)
	m.misses.Store(0)
	m.derivedHits.Store(0)
}

// New creates a CachedBlock over b with the given cache budget in bytes.
// The cache starts empty (cold); it fills on the first Refresh after
// queries have been recorded. A non-positive budget is allowed and yields
// a cache that never stores records — the explicit ablation baseline
// (Fig. 18's 0% threshold point); the validated public entry point is
// NewWithThreshold.
func New(b *core.GeoBlock, budgetBytes int) *CachedBlock {
	root := enclosingRoot(b)
	cb := &CachedBlock{
		block:  b,
		stats:  NewShardedStats(root),
		budget: budgetBytes,
	}
	cb.trie.Store(BuildTrie(b, nil, budgetBytes))
	return cb
}

// NewWithThreshold creates a CachedBlock whose budget is the given
// fraction of the block's cell-aggregate storage size — the paper's
// aggregate threshold (Fig. 18). The threshold must be a positive finite
// number: zero or negative values would silently yield a cache that can
// never store a record, and NaN/Inf budgets are meaningless. Budgets
// beyond the int range clamp to MaxInt (effectively unbounded).
func NewWithThreshold(b *core.GeoBlock, threshold float64) (*CachedBlock, error) {
	if math.IsNaN(threshold) || math.IsInf(threshold, 0) || threshold <= 0 {
		return nil, fmt.Errorf("aggtrie: aggregate threshold must be a positive finite number, got %v", threshold)
	}
	budget := threshold * float64(b.SizeBytes())
	if budget >= float64(math.MaxInt) {
		// A float-to-int conversion out of range is implementation-
		// defined (it wraps negative on amd64), which would silently
		// recreate the useless 0-record cache this validation exists to
		// prevent.
		return New(b, math.MaxInt), nil
	}
	return New(b, int(budget)), nil
}

// Block returns the underlying GeoBlock.
func (cb *CachedBlock) Block() *core.GeoBlock { return cb.block }

// Stats returns the sharded query statistics collected so far.
func (cb *CachedBlock) Stats() *ShardedStats { return cb.stats }

// Trie returns the currently published cache trie.
func (cb *CachedBlock) Trie() *Trie { return cb.trie.Load() }

// BudgetBytes returns the cache budget.
func (cb *CachedBlock) BudgetBytes() int { return cb.budget }

// Metrics returns a snapshot of the effectiveness counters.
func (cb *CachedBlock) Metrics() Metrics { return cb.metrics.snapshot() }

// ResetMetrics zeroes the effectiveness counters.
func (cb *CachedBlock) ResetMetrics() { cb.metrics.reset() }

// Refresh rebuilds the cache trie from the accumulated statistics: cells
// are ranked by score and inserted best-first until the byte budget is
// exhausted. The rebuild is copy-on-write — queries keep hitting the old
// trie until the new one is published with a single atomic store.
func (cb *CachedBlock) Refresh() {
	cb.refreshMu.Lock()
	defer cb.refreshMu.Unlock()
	cb.refreshLocked()
}

// refreshLocked performs the rebuild; callers hold refreshMu.
func (cb *CachedBlock) refreshLocked() {
	var ranked []cellid.ID
	if cb.ScoreOwnHitsOnly {
		ranked = cb.stats.RankedCellsOwnHitsOnly()
	} else {
		ranked = cb.stats.RankedCells()
	}
	cb.trie.Store(BuildTrie(cb.block, ranked, cb.budget))
	cb.sinceRefresh.reset()
}

// MaybeRefresh rebuilds the cache only when the miss share among probes
// since the last refresh exceeds maxMissRate — the adaptive policy that
// keeps a well-fitted cache (and its warm arenas) untouched while the
// workload is served. It reports whether a refresh happened. Concurrent
// callers serialise on the rebuild, and the decision is re-checked under
// the lock so a caller that queued behind a refresh does not rebuild
// again from the same (now reset) miss window; queries are never blocked.
func (cb *CachedBlock) MaybeRefresh(maxMissRate float64) bool {
	if !cb.missRateExceeds(maxMissRate) {
		return false
	}
	cb.refreshMu.Lock()
	defer cb.refreshMu.Unlock()
	if !cb.missRateExceeds(maxMissRate) {
		return false
	}
	cb.refreshLocked()
	return true
}

// missRateExceeds reports whether the miss share among probes since the
// last refresh exceeds max.
func (cb *CachedBlock) missRateExceeds(max float64) bool {
	m := cb.sinceRefresh.snapshot()
	if m.Probes == 0 {
		return false
	}
	return float64(m.Misses+m.PartialHits)/float64(m.Probes) > max
}

// probeMargin is how many levels above the block level a query cell must
// sit before the cache is probed for it. A cell k levels up pre-combines
// up to 4^k grid cells; with a margin of 2 a cached record replaces the
// scan of up to 16 cell aggregates, comfortably above the cost of the trie
// walk plus statistics update. Cells closer to the block level are served
// directly by the cursor-bounded scan.
const probeMargin = 2

// probeWorthwhile reports whether the cache can beat the plain scan for a
// query cell. Cells at or near the block level contain few cell
// aggregates, so a cached record saves (almost) nothing over the sorted
// aggregate array's sequential scan; probing the trie for them is pure
// overhead — the effect the paper observes as the base workload being
// "always slightly faster for Block". Only coarser cells, which
// pre-combine many grid cells, are worth probing and caching.
func (cb *CachedBlock) probeWorthwhile(qc cellid.ID) bool {
	return qc.Level() <= cb.block.Level()-probeMargin
}

// Select answers a SELECT query over a covering with the adapted algorithm
// (paper Fig. 8): for each query cell, probe the trie; use the cell's
// cached record if present; otherwise combine cached direct children with
// scans for the uncached ones; otherwise fall back to the plain algorithm.
// Every query cell is also recorded in the statistics. The trie is loaded
// once at entry, so a concurrent Refresh never changes the cache mid-query.
func (cb *CachedBlock) Select(cov []cellid.ID, specs []core.AggSpec) (core.Result, error) {
	acc, err := cb.SelectPartial(cov, specs)
	if err != nil {
		return core.Result{}, err
	}
	return acc.Result(), nil
}

// SelectPartial is Select without the finalisation step: it returns the
// accumulator holding the pre-combined partial result so callers can merge
// partials across blocks (the shards of a partitioned dataset) before
// calling Result. Cache probing, statistics recording and the metrics
// counters behave exactly as in Select.
func (cb *CachedBlock) SelectPartial(cov []cellid.ID, specs []core.AggSpec) (*core.Accumulator, error) {
	acc, err := cb.block.NewAccumulator(specs)
	if err != nil {
		return nil, err
	}
	trie := cb.trie.Load()
	derivable := cb.DeriveFromSiblings && sumOnlySpecs(specs)
	cb.recordCoarse(cov)
	var d Metrics
	for _, qc := range cov {
		if !cb.probeWorthwhile(qc) {
			acc.AccumulateCell(qc)
			continue
		}
		d.Probes++
		nodeIdx, found := trie.locate(qc)
		if !found {
			if derivable {
				if count, cols, ok := cb.deriveFromSiblings(trie, qc); ok {
					acc.AddRecord(count, cols)
					d.DerivedHits++
					continue
				}
			}
			d.Misses++
			acc.AccumulateCell(qc)
			continue
		}
		if off := trie.nodes[nodeIdx].aggOff; off != 0 {
			count, cols, end := trie.record(off)
			acc.AddRecord(count, cols)
			acc.SkipTo(end)
			d.FullHits++
			continue
		}
		st := trie.children(nodeIdx)
		anyCached := st.present && (st.cached[0] != 0 || st.cached[1] != 0 || st.cached[2] != 0 || st.cached[3] != 0)
		if !anyCached {
			if derivable {
				if count, cols, ok := cb.deriveFromSiblings(trie, qc); ok {
					acc.AddRecord(count, cols)
					d.DerivedHits++
					continue
				}
			}
			d.Misses++
			acc.AccumulateCell(qc)
			continue
		}
		// Combine cached children; scan the rest. Beyond direct children
		// the bookkeeping cost outweighs the benefit (paper Sec. 3.6).
		children := qc.Children()
		for i, child := range children {
			if st.cached[i] != 0 {
				count, cols, end := trie.record(st.cached[i])
				acc.AddRecord(count, cols)
				acc.SkipTo(end)
			} else {
				acc.AccumulateCell(child)
			}
		}
		d.PartialHits++
	}
	cb.metrics.add(d)
	// The refresh policy treats derived hits like full hits: the query
	// was answered without scanning, so it is no evidence of a misfit
	// cache.
	d.FullHits += d.DerivedHits
	d.DerivedHits = 0
	cb.sinceRefresh.add(d)
	return acc, nil
}

// Count answers a COUNT query. COUNT runtime is nearly independent of the
// cell level (only the first and last aggregate per query cell are
// touched), so the paper applies the cache only to SELECT queries; Count
// therefore delegates to the plain range-sum algorithm but still records
// statistics so mixed workloads warm the cache.
func (cb *CachedBlock) Count(cov []cellid.ID) uint64 {
	cb.recordCoarse(cov)
	return cb.block.CountCovering(cov)
}

// recordCoarse records only the cells the cache would probe, keeping
// block-level boundary cells out of the statistics and the budget.
func (cb *CachedBlock) recordCoarse(cov []cellid.ID) {
	for _, qc := range cov {
		if cb.probeWorthwhile(qc) {
			cb.stats.RecordOne(qc)
		}
	}
}
