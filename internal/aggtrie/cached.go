package aggtrie

import (
	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
)

// CachedBlock is "BlockQC" from the paper's evaluation: a GeoBlock plus an
// AggregateTrie query cache and the adapted query algorithm of Fig. 8. The
// cache is rebuilt from observed query statistics on Refresh, within a
// fixed byte budget (the aggregate threshold).
type CachedBlock struct {
	block  *core.GeoBlock
	stats  *Stats
	trie   *Trie
	budget int

	// ScoreOwnHitsOnly switches to the ablation ranking that ignores
	// parent hits (DESIGN.md Sec. 5).
	ScoreOwnHitsOnly bool

	// DeriveFromSiblings enables the paper's future-work extension: an
	// uncached cell whose parent and all three siblings are cached is
	// answered as parent − siblings. Only count/sum/avg queries qualify
	// (min/max are not invertible).
	DeriveFromSiblings bool

	metrics Metrics
	// sinceRefresh counts probe outcomes since the last Refresh, driving
	// the MaybeRefresh policy. Unlike metrics it is not caller-resettable.
	sinceRefresh Metrics
}

// Metrics are cache effectiveness counters, reset with ResetMetrics.
type Metrics struct {
	// Probes counts query cells that went through the cache probe.
	Probes uint64
	// FullHits counts query cells answered entirely by one cached record.
	FullHits uint64
	// PartialHits counts query cells answered by a mix of cached direct
	// children and aggregate scans.
	PartialHits uint64
	// Misses counts query cells answered by the unmodified algorithm.
	Misses uint64
	// DerivedHits counts query cells answered by sibling derivation
	// (parent − siblings), when enabled.
	DerivedHits uint64
}

// HitRate returns the full-hit fraction over all probes, the quantity
// plotted in paper Fig. 18.
func (m Metrics) HitRate() float64 {
	if m.Probes == 0 {
		return 0
	}
	return float64(m.FullHits) / float64(m.Probes)
}

// New creates a CachedBlock over b with the given cache budget in bytes.
// The cache starts empty (cold); it fills on the first Refresh after
// queries have been recorded.
func New(b *core.GeoBlock, budgetBytes int) *CachedBlock {
	root := enclosingRoot(b)
	return &CachedBlock{
		block:  b,
		stats:  NewStats(root),
		budget: budgetBytes,
		trie:   BuildTrie(b, nil, budgetBytes),
	}
}

// NewWithThreshold creates a CachedBlock whose budget is the given
// fraction of the block's cell-aggregate storage size — the paper's
// aggregate threshold (Fig. 18).
func NewWithThreshold(b *core.GeoBlock, threshold float64) *CachedBlock {
	return New(b, int(threshold*float64(b.SizeBytes())))
}

// Block returns the underlying GeoBlock.
func (cb *CachedBlock) Block() *core.GeoBlock { return cb.block }

// Stats returns the query statistics collected so far.
func (cb *CachedBlock) Stats() *Stats { return cb.stats }

// Trie returns the current cache trie.
func (cb *CachedBlock) Trie() *Trie { return cb.trie }

// BudgetBytes returns the cache budget.
func (cb *CachedBlock) BudgetBytes() int { return cb.budget }

// Metrics returns a copy of the effectiveness counters.
func (cb *CachedBlock) Metrics() Metrics { return cb.metrics }

// ResetMetrics zeroes the effectiveness counters.
func (cb *CachedBlock) ResetMetrics() { cb.metrics = Metrics{} }

// Refresh rebuilds the cache trie from the accumulated statistics: cells
// are ranked by score and inserted best-first until the byte budget is
// exhausted.
func (cb *CachedBlock) Refresh() {
	var ranked []cellid.ID
	if cb.ScoreOwnHitsOnly {
		ranked = cb.stats.RankedCellsOwnHitsOnly()
	} else {
		ranked = cb.stats.RankedCells()
	}
	cb.trie = BuildTrie(cb.block, ranked, cb.budget)
	cb.sinceRefresh = Metrics{}
}

// MaybeRefresh rebuilds the cache only when the miss share among probes
// since the last refresh exceeds maxMissRate — the adaptive policy that
// keeps a well-fitted cache (and its warm arenas) untouched while the
// workload is served. It reports whether a refresh happened.
func (cb *CachedBlock) MaybeRefresh(maxMissRate float64) bool {
	m := cb.sinceRefresh
	if m.Probes == 0 {
		return false
	}
	missRate := float64(m.Misses+m.PartialHits) / float64(m.Probes)
	if missRate <= maxMissRate {
		return false
	}
	cb.Refresh()
	return true
}

// probeMargin is how many levels above the block level a query cell must
// sit before the cache is probed for it. A cell k levels up pre-combines
// up to 4^k grid cells; with a margin of 2 a cached record replaces the
// scan of up to 16 cell aggregates, comfortably above the cost of the trie
// walk plus statistics update. Cells closer to the block level are served
// directly by the cursor-bounded scan.
const probeMargin = 2

// probeWorthwhile reports whether the cache can beat the plain scan for a
// query cell. Cells at or near the block level contain few cell
// aggregates, so a cached record saves (almost) nothing over the sorted
// aggregate array's sequential scan; probing the trie for them is pure
// overhead — the effect the paper observes as the base workload being
// "always slightly faster for Block". Only coarser cells, which
// pre-combine many grid cells, are worth probing and caching.
func (cb *CachedBlock) probeWorthwhile(qc cellid.ID) bool {
	return qc.Level() <= cb.block.Level()-probeMargin
}

// Select answers a SELECT query over a covering with the adapted algorithm
// (paper Fig. 8): for each query cell, probe the trie; use the cell's
// cached record if present; otherwise combine cached direct children with
// scans for the uncached ones; otherwise fall back to the plain algorithm.
// Every query cell is also recorded in the statistics.
func (cb *CachedBlock) Select(cov []cellid.ID, specs []core.AggSpec) (core.Result, error) {
	acc, err := cb.block.NewAccumulator(specs)
	if err != nil {
		return core.Result{}, err
	}
	derivable := cb.DeriveFromSiblings && sumOnlySpecs(specs)
	cb.recordCoarse(cov)
	for _, qc := range cov {
		if !cb.probeWorthwhile(qc) {
			acc.AccumulateCell(qc)
			continue
		}
		cb.metrics.Probes++
		cb.sinceRefresh.Probes++
		nodeIdx, found := cb.trie.locate(qc)
		if !found {
			if derivable {
				if count, cols, ok := cb.deriveFromSiblings(qc); ok {
					acc.AddRecord(count, cols)
					cb.metrics.DerivedHits++
					cb.sinceRefresh.FullHits++
					continue
				}
			}
			cb.metrics.Misses++
			cb.sinceRefresh.Misses++
			acc.AccumulateCell(qc)
			continue
		}
		if off := cb.trie.nodes[nodeIdx].aggOff; off != 0 {
			count, cols, end := cb.trie.record(off)
			acc.AddRecord(count, cols)
			acc.SkipTo(end)
			cb.metrics.FullHits++
			cb.sinceRefresh.FullHits++
			continue
		}
		st := cb.trie.children(nodeIdx)
		anyCached := st.present && (st.cached[0] != 0 || st.cached[1] != 0 || st.cached[2] != 0 || st.cached[3] != 0)
		if !anyCached {
			if derivable {
				if count, cols, ok := cb.deriveFromSiblings(qc); ok {
					acc.AddRecord(count, cols)
					cb.metrics.DerivedHits++
					cb.sinceRefresh.FullHits++
					continue
				}
			}
			cb.metrics.Misses++
			cb.sinceRefresh.Misses++
			acc.AccumulateCell(qc)
			continue
		}
		// Combine cached children; scan the rest. Beyond direct children
		// the bookkeeping cost outweighs the benefit (paper Sec. 3.6).
		children := qc.Children()
		for i, child := range children {
			if st.cached[i] != 0 {
				count, cols, end := cb.trie.record(st.cached[i])
				acc.AddRecord(count, cols)
				acc.SkipTo(end)
			} else {
				acc.AccumulateCell(child)
			}
		}
		cb.metrics.PartialHits++
		cb.sinceRefresh.PartialHits++
	}
	return acc.Result(), nil
}

// Count answers a COUNT query. COUNT runtime is nearly independent of the
// cell level (only the first and last aggregate per query cell are
// touched), so the paper applies the cache only to SELECT queries; Count
// therefore delegates to the plain range-sum algorithm but still records
// statistics so mixed workloads warm the cache.
func (cb *CachedBlock) Count(cov []cellid.ID) uint64 {
	cb.recordCoarse(cov)
	return cb.block.CountCovering(cov)
}

// recordCoarse records only the cells the cache would probe, keeping
// block-level boundary cells out of the statistics and the budget.
func (cb *CachedBlock) recordCoarse(cov []cellid.ID) {
	for _, qc := range cov {
		if cb.probeWorthwhile(qc) {
			cb.stats.RecordOne(qc)
		}
	}
}
