package aggtrie

import (
	"math"
	"slices"

	"geoblocks/internal/cellid"
)

// DefaultNodeCap is the default bound on a statistics trie's arena, in
// nodes. Recording a never-repeating stream of cells (an adversarial or
// scanning workload) grows the arena by up to four nodes per new cell;
// without a bound such a workload exhausts memory. The default caps one
// trie at 8 MiB (2^20 nodes × 8 bytes) — far above what real skewed
// workloads allocate, so the cap is invisible outside hostile inputs.
const DefaultNodeCap = 1 << 20

// Stats tracks how often each query cell has been seen, the signal the
// cache uses to decide which areas are worth pre-aggregating (paper
// Sec. 3.6, "Determining Relevant Aggregates"). As in the paper, the
// counters live in a trie-like structure: a flat arena of fanout-4 nodes
// mirroring the cell hierarchy, so recording a query cell is a short array
// walk instead of a hash operation — recording happens on every query
// cell, so it must be nearly free.
//
// Only cells contained in the tracked root are recorded: cells outside the
// block's data region cannot be cached and would be pruned by the header
// anyway.
//
// Stats is not safe for concurrent use; ShardedStats stripes several
// instances behind per-shard locks for the concurrent serving path.
type Stats struct {
	root cellid.ID
	// nodes[0] is the root; children are allocated as contiguous blocks
	// of four, exactly like the AggregateTrie arena.
	nodes []statNode
	// distinct counts recorded cells (hits transitioning 0 -> 1).
	distinct int
	// nodeCap bounds len(nodes); once a record would grow the arena past
	// it, the record is dropped instead (see RecordOne). 0 means
	// unbounded.
	nodeCap int
	// dropped counts records discarded because of the node cap.
	dropped uint64
}

type statNode struct {
	childOff uint32
	hits     uint32
}

// NewStats creates empty statistics scoped to the given root cell, with
// the arena bounded by DefaultNodeCap.
func NewStats(root cellid.ID) *Stats {
	return &Stats{root: root, nodes: make([]statNode, 1, 64), nodeCap: DefaultNodeCap}
}

// SetNodeCap bounds the arena to at most n nodes; n <= 0 removes the
// bound. Shrinking below the current arena size only prevents further
// growth.
func (s *Stats) SetNodeCap(n int) {
	if n < 0 {
		n = 0
	}
	s.nodeCap = n
}

// Dropped returns how many records were discarded because extending the
// trie would have exceeded the node cap.
func (s *Stats) Dropped() uint64 { return s.dropped }

// Record notes one query for each covering cell.
func (s *Stats) Record(cov []cellid.ID) {
	for _, c := range cov {
		s.RecordOne(c)
	}
}

// RecordOne notes one query for a single cell, extending the trie path on
// first sight. Like Trie.locate, the walk reads child steps from the
// Hilbert position bits — two bits per level below the root. When
// extending the path would exceed the node cap the record is dropped:
// cells already tracked keep counting, but a hostile never-repeating
// workload cannot grow the arena without limit.
func (s *Stats) RecordOne(c cellid.ID) {
	s.addHits(c, 1)
}

// addHits adds n to the cell's hit counter (saturating), allocating the
// trie path as needed. It reports whether the hits were applied.
func (s *Stats) addHits(c cellid.ID, n uint32) bool {
	if n == 0 || !s.root.Contains(c) {
		return false
	}
	depth := c.Level() - s.root.Level()
	pos := c.Pos()
	idx := 0
	for d := depth - 1; d >= 0; d-- {
		if s.nodes[idx].childOff == 0 {
			if s.nodeCap > 0 && len(s.nodes)+4 > s.nodeCap {
				s.dropped++
				return false
			}
			off := uint32(len(s.nodes))
			s.nodes = append(s.nodes, statNode{}, statNode{}, statNode{}, statNode{})
			s.nodes[idx].childOff = off
		}
		idx = int(s.nodes[idx].childOff) + int(pos>>uint(2*d))&3
	}
	if s.nodes[idx].hits == 0 {
		s.distinct++
	}
	if uint64(s.nodes[idx].hits)+uint64(n) > math.MaxUint32 {
		s.nodes[idx].hits = math.MaxUint32
	} else {
		s.nodes[idx].hits += n
	}
	return true
}

// mergeFrom folds every recorded cell of o (which must share s's root)
// into s, adding hit counts. ShardedStats uses it to assemble the global
// view at rank time.
func (s *Stats) mergeFrom(o *Stats) {
	if o.root != s.root {
		return
	}
	var walk func(idx int, cell cellid.ID)
	walk = func(idx int, cell cellid.ID) {
		n := o.nodes[idx]
		if n.hits > 0 {
			s.addHits(cell, n.hits)
		}
		if n.childOff == 0 || cell.IsLeaf() {
			return
		}
		children := cell.Children()
		for i := 0; i < 4; i++ {
			walk(int(n.childOff)+i, children[i])
		}
	}
	walk(0, o.root)
}

// Hits returns the recorded hit count of cell.
func (s *Stats) Hits(cell cellid.ID) uint64 {
	if !s.root.Contains(cell) {
		return 0
	}
	depth := cell.Level() - s.root.Level()
	pos := cell.Pos()
	idx := 0
	for d := depth - 1; d >= 0; d-- {
		off := s.nodes[idx].childOff
		if off == 0 {
			return 0
		}
		idx = int(off) + int(pos>>uint(2*d))&3
	}
	return uint64(s.nodes[idx].hits)
}

// NumCells returns how many distinct cells have been recorded.
func (s *Stats) NumCells() int { return s.distinct }

// SizeBytes returns the arena footprint of the statistics trie.
func (s *Stats) SizeBytes() int { return len(s.nodes) * 8 }

// Reset clears all statistics (the node cap is kept).
func (s *Stats) Reset() {
	s.nodes = make([]statNode, 1, 64)
	s.distinct = 0
	s.dropped = 0
}

// scored pairs a cell with its cache priority.
type scored struct {
	cell  cellid.ID
	score uint64
	level int
}

// RankedCells returns all recorded cells ordered by cache priority. The
// score of a cell is its own hits plus its parent's hits — child cells can
// serve parent queries, so parent popularity transfers down (paper
// Sec. 3.6). Ties break towards coarser cells (bigger impact), then by
// ascending spatial key for determinism.
func (s *Stats) RankedCells() []cellid.ID {
	return s.ranked(true)
}

// RankedCellsOwnHitsOnly is the ablation variant that scores cells by
// their own hits alone, ignoring the parent transfer (DESIGN.md Sec. 5).
func (s *Stats) RankedCellsOwnHitsOnly() []cellid.ID {
	return s.ranked(false)
}

func (s *Stats) ranked(parentTransfer bool) []cellid.ID {
	cand := make([]scored, 0, s.distinct)
	var walk func(idx int, cell cellid.ID, parentHits uint32)
	walk = func(idx int, cell cellid.ID, parentHits uint32) {
		n := s.nodes[idx]
		if n.hits > 0 {
			score := uint64(n.hits)
			if parentTransfer {
				score += uint64(parentHits)
			}
			cand = append(cand, scored{cell: cell, score: score, level: cell.Level()})
		}
		if n.childOff == 0 || cell.IsLeaf() {
			return
		}
		children := cell.Children()
		for i := 0; i < 4; i++ {
			walk(int(n.childOff)+i, children[i], n.hits)
		}
	}
	walk(0, s.root, 0)

	slices.SortFunc(cand, func(a, b scored) int {
		switch {
		case a.score != b.score:
			if a.score > b.score {
				return -1
			}
			return 1
		case a.level != b.level:
			return a.level - b.level
		case a.cell != b.cell:
			if a.cell < b.cell {
				return -1
			}
			return 1
		}
		return 0
	})
	out := make([]cellid.ID, len(cand))
	for i, c := range cand {
		out[i] = c.cell
	}
	return out
}
