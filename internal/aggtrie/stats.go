package aggtrie

import (
	"sort"

	"geoblocks/internal/cellid"
)

// Stats tracks how often each query cell has been seen, the signal the
// cache uses to decide which areas are worth pre-aggregating (paper
// Sec. 3.6, "Determining Relevant Aggregates"). As in the paper, the
// counters live in a trie-like structure: a flat arena of fanout-4 nodes
// mirroring the cell hierarchy, so recording a query cell is a short array
// walk instead of a hash operation — recording happens on every query
// cell, so it must be nearly free.
//
// Only cells contained in the tracked root are recorded: cells outside the
// block's data region cannot be cached and would be pruned by the header
// anyway.
type Stats struct {
	root cellid.ID
	// nodes[0] is the root; children are allocated as contiguous blocks
	// of four, exactly like the AggregateTrie arena.
	nodes []statNode
	// distinct counts recorded cells (hits transitioning 0 -> 1).
	distinct int
}

type statNode struct {
	childOff uint32
	hits     uint32
}

// NewStats creates empty statistics scoped to the given root cell.
func NewStats(root cellid.ID) *Stats {
	return &Stats{root: root, nodes: make([]statNode, 1, 64)}
}

// Record notes one query for each covering cell.
func (s *Stats) Record(cov []cellid.ID) {
	for _, c := range cov {
		s.RecordOne(c)
	}
}

// RecordOne notes one query for a single cell, extending the trie path on
// first sight. Like Trie.locate, the walk reads child steps from the
// Hilbert position bits — two bits per level below the root.
func (s *Stats) RecordOne(c cellid.ID) {
	if !s.root.Contains(c) {
		return
	}
	depth := c.Level() - s.root.Level()
	pos := c.Pos()
	idx := 0
	for d := depth - 1; d >= 0; d-- {
		if s.nodes[idx].childOff == 0 {
			off := uint32(len(s.nodes))
			s.nodes = append(s.nodes, statNode{}, statNode{}, statNode{}, statNode{})
			s.nodes[idx].childOff = off
		}
		idx = int(s.nodes[idx].childOff) + int(pos>>uint(2*d))&3
	}
	if s.nodes[idx].hits == 0 {
		s.distinct++
	}
	s.nodes[idx].hits++
}

// Hits returns the recorded hit count of cell.
func (s *Stats) Hits(cell cellid.ID) uint64 {
	if !s.root.Contains(cell) {
		return 0
	}
	depth := cell.Level() - s.root.Level()
	pos := cell.Pos()
	idx := 0
	for d := depth - 1; d >= 0; d-- {
		off := s.nodes[idx].childOff
		if off == 0 {
			return 0
		}
		idx = int(off) + int(pos>>uint(2*d))&3
	}
	return uint64(s.nodes[idx].hits)
}

// NumCells returns how many distinct cells have been recorded.
func (s *Stats) NumCells() int { return s.distinct }

// SizeBytes returns the arena footprint of the statistics trie.
func (s *Stats) SizeBytes() int { return len(s.nodes) * 8 }

// Reset clears all statistics.
func (s *Stats) Reset() {
	s.nodes = make([]statNode, 1, 64)
	s.distinct = 0
}

// scored pairs a cell with its cache priority.
type scored struct {
	cell  cellid.ID
	score uint64
	level int
}

// RankedCells returns all recorded cells ordered by cache priority. The
// score of a cell is its own hits plus its parent's hits — child cells can
// serve parent queries, so parent popularity transfers down (paper
// Sec. 3.6). Ties break towards coarser cells (bigger impact), then by
// ascending spatial key for determinism.
func (s *Stats) RankedCells() []cellid.ID {
	return s.ranked(true)
}

// RankedCellsOwnHitsOnly is the ablation variant that scores cells by
// their own hits alone, ignoring the parent transfer (DESIGN.md Sec. 5).
func (s *Stats) RankedCellsOwnHitsOnly() []cellid.ID {
	return s.ranked(false)
}

func (s *Stats) ranked(parentTransfer bool) []cellid.ID {
	cand := make([]scored, 0, s.distinct)
	var walk func(idx int, cell cellid.ID, parentHits uint32)
	walk = func(idx int, cell cellid.ID, parentHits uint32) {
		n := s.nodes[idx]
		if n.hits > 0 {
			score := uint64(n.hits)
			if parentTransfer {
				score += uint64(parentHits)
			}
			cand = append(cand, scored{cell: cell, score: score, level: cell.Level()})
		}
		if n.childOff == 0 || cell.IsLeaf() {
			return
		}
		children := cell.Children()
		for i := 0; i < 4; i++ {
			walk(int(n.childOff)+i, children[i], n.hits)
		}
	}
	walk(0, s.root, 0)

	sort.Slice(cand, func(i, j int) bool {
		if cand[i].score != cand[j].score {
			return cand[i].score > cand[j].score
		}
		if cand[i].level != cand[j].level {
			return cand[i].level < cand[j].level
		}
		return cand[i].cell < cand[j].cell
	})
	out := make([]cellid.ID, len(cand))
	for i, c := range cand {
		out[i] = c.cell
	}
	return out
}
