package aggtrie

import (
	"sync"

	"geoblocks/internal/cellid"
)

// statShards is the number of statistics stripes. Cells hash to a fixed
// shard, so two goroutines recording different cells almost never touch
// the same lock; 16 stripes keep the collision probability low well past
// the core counts the serving path targets, while the merge at rank time
// stays trivially cheap. Power of two, required by the mask below.
const statShards = 16

// ShardedStats stripes query statistics across statShards independently
// locked Stats tries. RecordOne — called for every coarse covering cell
// of every query — takes only the one shard lock its cell hashes to, so
// concurrent readers of a CachedBlock do not serialise on a global
// statistics lock. The global view needed for cache ranking is assembled
// by merging the shards at Refresh time, which is rare and already
// dominated by the trie rebuild.
//
// Because each cell deterministically maps to exactly one shard, per-cell
// reads (Hits) touch a single shard and totals (NumCells, SizeBytes) are
// plain sums.
type ShardedStats struct {
	root   cellid.ID
	shards []statShard
}

// statShard pads each lock+trie pair to its own cache line so shard locks
// do not false-share.
type statShard struct {
	mu sync.Mutex
	st *Stats
	_  [64 - 16]byte
}

// NewShardedStats creates empty sharded statistics scoped to the given
// root cell. The combined arena bound defaults to DefaultNodeCap split
// evenly across shards.
func NewShardedStats(root cellid.ID) *ShardedStats {
	ss := &ShardedStats{root: root, shards: make([]statShard, statShards)}
	for i := range ss.shards {
		ss.shards[i].st = NewStats(root)
		ss.shards[i].st.SetNodeCap(DefaultNodeCap / statShards)
	}
	return ss
}

// SetNodeCap bounds the combined arena to roughly n nodes by dividing the
// bound evenly across shards; n <= 0 removes the bound. The per-shard
// floor of 64 nodes keeps tiny caps from rejecting every record.
func (ss *ShardedStats) SetNodeCap(n int) {
	per := 0
	if n > 0 {
		per = n / len(ss.shards)
		if per < 64 {
			per = 64
		}
	}
	for i := range ss.shards {
		sh := &ss.shards[i]
		sh.mu.Lock()
		sh.st.SetNodeCap(per)
		sh.mu.Unlock()
	}
}

// Root returns the root cell the statistics are scoped to.
func (ss *ShardedStats) Root() cellid.ID { return ss.root }

func (ss *ShardedStats) shardFor(c cellid.ID) *statShard {
	// Fibonacci hash spreads the structured Hilbert ids; high bits pick
	// the shard (valid for any power-of-two statShards up to 2^16).
	h := uint64(c) * 0x9e3779b97f4a7c15
	return &ss.shards[(h>>48)&(statShards-1)]
}

// RecordOne notes one query for a single cell in the cell's shard.
func (ss *ShardedStats) RecordOne(c cellid.ID) {
	sh := ss.shardFor(c)
	sh.mu.Lock()
	sh.st.RecordOne(c)
	sh.mu.Unlock()
}

// Record notes one query for each covering cell.
func (ss *ShardedStats) Record(cov []cellid.ID) {
	for _, c := range cov {
		ss.RecordOne(c)
	}
}

// Hits returns the recorded hit count of cell.
func (ss *ShardedStats) Hits(cell cellid.ID) uint64 {
	sh := ss.shardFor(cell)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.st.Hits(cell)
}

// NumCells returns how many distinct cells have been recorded.
func (ss *ShardedStats) NumCells() int {
	total := 0
	for i := range ss.shards {
		sh := &ss.shards[i]
		sh.mu.Lock()
		total += sh.st.NumCells()
		sh.mu.Unlock()
	}
	return total
}

// SizeBytes returns the combined arena footprint of all shards.
func (ss *ShardedStats) SizeBytes() int {
	total := 0
	for i := range ss.shards {
		sh := &ss.shards[i]
		sh.mu.Lock()
		total += sh.st.SizeBytes()
		sh.mu.Unlock()
	}
	return total
}

// Dropped returns how many records were discarded by the node cap across
// all shards.
func (ss *ShardedStats) Dropped() uint64 {
	var total uint64
	for i := range ss.shards {
		sh := &ss.shards[i]
		sh.mu.Lock()
		total += sh.st.Dropped()
		sh.mu.Unlock()
	}
	return total
}

// Reset clears all statistics.
func (ss *ShardedStats) Reset() {
	for i := range ss.shards {
		sh := &ss.shards[i]
		sh.mu.Lock()
		sh.st.Reset()
		sh.mu.Unlock()
	}
}

// merged assembles the global statistics trie by folding every shard into
// a fresh unbounded Stats. Hit counts add commutatively and the ranking
// order is a total order on (score, level, cell), so the result is
// deterministic for a given multiset of recorded cells regardless of
// which goroutine recorded what.
func (ss *ShardedStats) merged() *Stats {
	m := NewStats(ss.root)
	m.SetNodeCap(0) // already bounded by the per-shard caps
	for i := range ss.shards {
		sh := &ss.shards[i]
		sh.mu.Lock()
		m.mergeFrom(sh.st)
		sh.mu.Unlock()
	}
	return m
}

// RankedCells merges the shards and returns all recorded cells ordered by
// cache priority (see Stats.RankedCells).
func (ss *ShardedStats) RankedCells() []cellid.ID {
	return ss.merged().RankedCells()
}

// RankedCellsOwnHitsOnly is the ablation ranking over the merged shards.
func (ss *ShardedStats) RankedCellsOwnHitsOnly() []cellid.ID {
	return ss.merged().RankedCellsOwnHitsOnly()
}
