package aggtrie

import (
	"sync"
	"testing"

	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
)

func TestMaybeRefreshPolicy(t *testing.T) {
	b := buildTestBlock(t, 20000, 13, 31)
	cb := New(b, 1<<22)
	cov := testCovering(b, queryPolys()[0])
	specs := allSpecs()

	// No probes yet: nothing to decide.
	if cb.MaybeRefresh(0.1) {
		t.Fatal("refresh without probes")
	}

	// Cold cache: all probes miss, refresh must trigger.
	if _, err := cb.Select(cov, specs); err != nil {
		t.Fatal(err)
	}
	if !cb.MaybeRefresh(0.1) {
		t.Fatal("cold cache did not refresh")
	}

	// Warm cache fitting the workload: no further refresh.
	if _, err := cb.Select(cov, specs); err != nil {
		t.Fatal(err)
	}
	if cb.MaybeRefresh(0.1) {
		t.Fatal("fitting cache refreshed needlessly")
	}

	// A new region of queries reintroduces misses.
	cov2 := testCovering(b, queryPolys()[2])
	if _, err := cb.Select(cov2, specs); err != nil {
		t.Fatal(err)
	}
	if !cb.MaybeRefresh(0.1) {
		t.Fatal("new workload region did not trigger refresh")
	}
}

func TestCacheHitAdvancesCursorConsistently(t *testing.T) {
	// Mixed hit/miss coverings must produce results identical to the plain
	// path even when hits skip aggregate ranges (the SkipTo plumbing).
	b := buildTestBlock(t, 30000, 13, 32)
	cb := New(b, 1<<16) // small budget: partial caching guaranteed
	specs := allSpecs()

	covs := make([][]cellid.ID, 0)
	for _, p := range queryPolys() {
		covs = append(covs, testCovering(b, p))
	}
	for round := 0; round < 4; round++ {
		for qi, cov := range covs {
			want, err := b.SelectCovering(cov, specs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cb.Select(cov, specs)
			if err != nil {
				t.Fatal(err)
			}
			if got.Count != want.Count {
				t.Fatalf("round %d query %d: %d != %d", round, qi, got.Count, want.Count)
			}
			for i := range got.Values {
				if !approxEqual(got.Values[i], want.Values[i]) {
					t.Fatalf("round %d query %d value %d differs", round, qi, i)
				}
			}
		}
		cb.MaybeRefresh(0.05)
	}
	m := cb.Metrics()
	if m.FullHits == 0 || m.Misses == 0 {
		t.Fatalf("test should exercise both hits and misses, got %+v", m)
	}
}

func TestTrieEndsMatchUpperBound(t *testing.T) {
	b := buildTestBlock(t, 20000, 12, 33)
	root := enclosingRoot(b)
	var cells []cellid.ID
	for _, c1 := range root.Children() {
		cells = append(cells, c1)
		for _, c2 := range c1.Children() {
			cells = append(cells, c2)
		}
	}
	trie := BuildTrie(b, cells, 1<<24)
	if err := trie.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, cell := range cells {
		idx, ok := trie.locate(cell)
		if !ok || trie.nodes[idx].aggOff == 0 {
			t.Fatalf("cell %v not cached", cell)
		}
		count, _, end := trie.record(trie.nodes[idx].aggOff)
		wantCount, _, wantEnd := b.AggregateCellRange(cell)
		if count != wantCount || end != wantEnd {
			t.Fatalf("cell %v: (count,end) = (%d,%d), want (%d,%d)", cell, count, end, wantCount, wantEnd)
		}
	}
}

func TestStatsTrieGrowthAndReset(t *testing.T) {
	root := cellid.Root()
	s := NewStats(root)
	if s.SizeBytes() != 8 {
		t.Fatalf("empty stats size = %d", s.SizeBytes())
	}
	c := root.Children()[1].Children()[2]
	for i := 0; i < 5; i++ {
		s.RecordOne(c)
	}
	if s.Hits(c) != 5 {
		t.Fatalf("hits = %d", s.Hits(c))
	}
	if s.NumCells() != 1 {
		t.Fatalf("distinct = %d", s.NumCells())
	}
	// Two levels of child blocks were allocated.
	if s.SizeBytes() != (1+8)*8 {
		t.Fatalf("stats size = %d, want %d", s.SizeBytes(), (1+8)*8)
	}
	s.Reset()
	if s.NumCells() != 0 || s.Hits(c) != 0 {
		t.Fatal("reset did not clear stats")
	}
}

func TestConcurrentWarmReads(t *testing.T) {
	// A built GeoBlock is safe for concurrent readers; verify with the
	// race detector in mind (plain SelectCovering only — the cached block
	// mutates statistics and is documented as not concurrency-safe).
	b := buildTestBlock(t, 20000, 12, 34)
	cov := testCovering(b, queryPolys()[0])
	specs := allSpecs()
	want, err := b.SelectCovering(cov, specs)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := b.SelectCovering(cov, specs)
				if err != nil {
					errs <- err
					return
				}
				if got.Count != want.Count {
					errs <- core.ErrRebuildRequired // any sentinel
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent read failed: %v", err)
	}
}
