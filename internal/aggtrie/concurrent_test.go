package aggtrie

// Tests for the concurrent serving contract: many goroutines querying one
// CachedBlock while the cache refreshes must race-cleanly produce results
// equivalent to the serial plain path, sharded statistics must rank
// deterministically regardless of recording interleavings, and the stats
// arena must stay bounded under adversarial workloads. Run with -race.

import (
	"math/rand"
	"sync"
	"testing"

	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
	"geoblocks/internal/workload"
)

// TestConcurrentSelectWithRefresh is the acceptance test of the lock-light
// read path: 8+ goroutines query one cached block while the adaptive
// refresh policy rebuilds the trie underneath them. Every result must
// match the serial plain path: COUNT and MIN/MAX bit-identically, SUM/AVG
// within floating-point reassociation tolerance (cached records combine
// pre-summed ranges in a different order).
func TestConcurrentSelectWithRefresh(t *testing.T) {
	b := buildTestBlock(t, 30000, 13, 41)
	cb := New(b, 1<<18)
	specs := allSpecs()

	polys := queryPolys()
	covs := make([][]cellid.ID, len(polys))
	wants := make([]core.Result, len(polys))
	for i, p := range polys {
		covs[i] = testCovering(b, p)
		want, err := b.SelectCovering(covs[i], specs)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = want
	}

	const goroutines = 8
	const iters = 60
	var queriers sync.WaitGroup
	errs := make(chan string, goroutines+1)

	// One goroutine drives the adaptive refresh policy continuously, so
	// queries overlap both the copy-on-write rebuild and the pointer swap.
	stop := make(chan struct{})
	refresherDone := make(chan struct{})
	go func() {
		defer close(refresherDone)
		for {
			select {
			case <-stop:
				return
			default:
				cb.MaybeRefresh(0)
			}
		}
	}()

	for g := 0; g < goroutines; g++ {
		queriers.Add(1)
		go func(g int) {
			defer queriers.Done()
			for i := 0; i < iters; i++ {
				qi := (g + i) % len(covs)
				got, err := cb.Select(covs[qi], specs)
				if err != nil {
					errs <- err.Error()
					return
				}
				want := wants[qi]
				if got.Count != want.Count {
					errs <- "count mismatch"
					return
				}
				for k, s := range specs {
					switch s.Func {
					case core.AggCount, core.AggMin, core.AggMax:
						if got.Values[k] != want.Values[k] {
							errs <- "min/max/count value mismatch"
							return
						}
					default:
						if !approxEqual(got.Values[k], want.Values[k]) {
							errs <- "sum/avg value mismatch"
							return
						}
					}
				}
				if n := cb.Count(covs[qi]); n != want.Count {
					errs <- "Count mismatch"
					return
				}
			}
		}(g)
	}

	// Stop the refresher only after the queriers are done, so refreshes
	// overlap queries for the whole run.
	queriers.Wait()
	close(stop)
	<-refresherDone
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}

	// Metrics are atomic and never reset here: the probe total must be
	// exact despite the concurrency.
	var coarsePerQuery [8]uint64
	for qi, cov := range covs {
		for _, qc := range cov {
			if cb.probeWorthwhile(qc) {
				coarsePerQuery[qi]++
			}
		}
	}
	var wantProbes uint64
	for g := 0; g < goroutines; g++ {
		for i := 0; i < iters; i++ {
			wantProbes += coarsePerQuery[(g+i)%len(covs)]
		}
	}
	if m := cb.Metrics(); m.Probes != wantProbes {
		t.Fatalf("probes = %d, want %d (lost updates?)", m.Probes, wantProbes)
	}
}

// TestShardedStatsMatchesSerial records the same cell stream into sharded
// and plain statistics and asserts identical per-cell counts, totals and
// ranking.
func TestShardedStatsMatchesSerial(t *testing.T) {
	root := cellid.Root()
	plain := NewStats(root)
	sharded := NewShardedStats(root)

	rng := rand.New(rand.NewSource(42))
	var cells []cellid.ID
	for _, c1 := range root.Children() {
		cells = append(cells, c1)
		for _, c2 := range c1.Children() {
			cells = append(cells, c2)
			for _, c3 := range c2.Children() {
				if rng.Intn(2) == 0 {
					cells = append(cells, c3)
				}
			}
		}
	}
	stream := make([]cellid.ID, 0, 4000)
	for i := 0; i < 4000; i++ {
		stream = append(stream, cells[rng.Intn(len(cells))])
	}
	for _, c := range stream {
		plain.RecordOne(c)
		sharded.RecordOne(c)
	}

	if plain.NumCells() != sharded.NumCells() {
		t.Fatalf("distinct: %d != %d", plain.NumCells(), sharded.NumCells())
	}
	for _, c := range cells {
		if plain.Hits(c) != sharded.Hits(c) {
			t.Fatalf("hits(%v): %d != %d", c, plain.Hits(c), sharded.Hits(c))
		}
	}
	pr, sr := plain.RankedCells(), sharded.RankedCells()
	if len(pr) != len(sr) {
		t.Fatalf("ranked lengths differ: %d != %d", len(pr), len(sr))
	}
	for i := range pr {
		if pr[i] != sr[i] {
			t.Fatalf("ranked[%d]: %v != %v", i, pr[i], sr[i])
		}
	}
	po, so := plain.RankedCellsOwnHitsOnly(), sharded.RankedCellsOwnHitsOnly()
	for i := range po {
		if po[i] != so[i] {
			t.Fatalf("own-hits ranked[%d]: %v != %v", i, po[i], so[i])
		}
	}
}

// TestShardedRankedDeterministicUnderInterleaving replays the same
// multiset of records in shuffled orders and from concurrent goroutines;
// the merged ranking must be identical every time.
func TestShardedRankedDeterministicUnderInterleaving(t *testing.T) {
	root := cellid.Root()
	var cells []cellid.ID
	for _, c1 := range root.Children() {
		cells = append(cells, c1)
		for _, c2 := range c1.Children() {
			cells = append(cells, c2)
		}
	}
	// Zipf-distributed skew (workload.ZipfIndices) so scores genuinely
	// differ between hot and cold cells.
	stream := make([]cellid.ID, 0, 2000)
	for _, idx := range workload.ZipfIndices(len(cells), 2000, 1.3, 7) {
		stream = append(stream, cells[idx])
	}
	rng := rand.New(rand.NewSource(7))

	var ref []cellid.ID
	for trial := 0; trial < 4; trial++ {
		ss := NewShardedStats(root)
		shuffled := append([]cellid.ID(nil), stream...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

		// Record from several goroutines to vary shard interleavings.
		var wg sync.WaitGroup
		const workers = 4
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(shuffled); i += workers {
					ss.RecordOne(shuffled[i])
				}
			}(w)
		}
		wg.Wait()

		ranked := ss.RankedCells()
		if trial == 0 {
			ref = ranked
			continue
		}
		if len(ranked) != len(ref) {
			t.Fatalf("trial %d: ranked length %d != %d", trial, len(ranked), len(ref))
		}
		for i := range ref {
			if ranked[i] != ref[i] {
				t.Fatalf("trial %d: ranked[%d] = %v, want %v", trial, i, ranked[i], ref[i])
			}
		}
	}
}

// TestStatsNodeCap floods statistics with never-repeating leaf cells and
// asserts the arena stays within the configured bound while already
// tracked cells keep counting.
func TestStatsNodeCap(t *testing.T) {
	root := cellid.Root()
	s := NewStats(root)
	const capNodes = 1 << 10
	s.SetNodeCap(capNodes)

	tracked := root.Children()[0].Children()[1]
	s.RecordOne(tracked)

	// Adversarial stream: distinct leaf cells force fresh paths.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200000; i++ {
		s.RecordOne(randomLeaf(root, rng))
	}
	if got := len(s.nodes); got > capNodes {
		t.Fatalf("arena %d nodes exceeds cap %d", got, capNodes)
	}
	if s.Dropped() == 0 {
		t.Fatal("cap never dropped a record under the adversarial stream")
	}
	before := s.Hits(tracked)
	s.RecordOne(tracked)
	if s.Hits(tracked) != before+1 {
		t.Fatal("tracked cell stopped counting after the cap was reached")
	}

	// The sharded wrapper applies the cap across shards.
	ss := NewShardedStats(root)
	ss.SetNodeCap(capNodes * statShards)
	for i := 0; i < 200000; i++ {
		ss.RecordOne(randomLeaf(root, rng))
	}
	if got := ss.SizeBytes(); got > (capNodes*statShards)*8+statShards*8 {
		t.Fatalf("sharded arena %d bytes exceeds combined cap", got)
	}
}

// randomLeaf descends from root to MaxLevel choosing random children.
func randomLeaf(root cellid.ID, rng *rand.Rand) cellid.ID {
	c := root
	for !c.IsLeaf() {
		c = c.Children()[rng.Intn(4)]
	}
	return c
}
