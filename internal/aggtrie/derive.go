package aggtrie

import (
	"math"

	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
)

// Sibling derivation is the extension the paper's Sec. 3.6 leaves as
// future work: "the count for a cell could be calculated by subtracting
// the count of its sibling cells from the count of its parent cell".
// Counts and sums are invertible, so when a query cell is uncached but its
// parent and all three siblings are, the cell's record follows by
// subtraction. Minimum and maximum are not invertible; derivation is
// attempted only when the requested aggregates avoid them.

// sumOnlySpecs reports whether every requested aggregate is derivable by
// subtraction (count, sum, avg).
func sumOnlySpecs(specs []core.AggSpec) bool {
	for _, s := range specs {
		if s.Func == core.AggMin || s.Func == core.AggMax {
			return false
		}
	}
	return true
}

// deriveFromSiblings attempts to reconstruct qc's aggregate record as
// parent − siblings, reading from the trie snapshot t the caller loaded
// at query entry (so a concurrent Refresh cannot swap the cache
// mid-derivation). It returns the derived count and per-column records
// (with poisoned min/max fields that callers must not read — guaranteed by
// the sumOnlySpecs precondition).
func (cb *CachedBlock) deriveFromSiblings(t *Trie, qc cellid.ID) (uint64, []core.ColAggregate, bool) {
	rootLevel := t.rootCell.Level()
	if qc.Level() <= rootLevel {
		return 0, nil, false
	}
	parent := qc.ImmediateParent()
	pIdx, ok := t.locate(parent)
	if !ok || t.nodes[pIdx].aggOff == 0 {
		return 0, nil, false
	}
	childBlock := t.nodes[pIdx].childOff
	if childBlock == 0 {
		return 0, nil, false
	}
	own := qc.ChildPosition()
	pCount, pCols, _ := t.record(t.nodes[pIdx].aggOff)

	count := pCount
	cols := make([]core.ColAggregate, len(pCols))
	for c := range cols {
		cols[c] = core.ColAggregate{
			Min: math.Inf(1), Max: math.Inf(-1), // not derivable: poisoned
			Sum: pCols[c].Sum,
		}
	}
	for i := 0; i < 4; i++ {
		if i == own {
			continue
		}
		sibOff := t.nodes[int(childBlock)+i].aggOff
		if sibOff == 0 {
			return 0, nil, false
		}
		sCount, sCols, _ := t.record(sibOff)
		if sCount > count {
			return 0, nil, false // stale cache; be safe
		}
		count -= sCount
		for c := range cols {
			cols[c].Sum -= sCols[c].Sum
		}
	}
	return count, cols, true
}
