// Package aggtrie implements the AggregateTrie query cache ("BlockQC",
// paper Sec. 3.6): a trie over previously queried cells that stores
// pre-combined aggregate records for the most valuable cells in a
// compact, budgeted arena, dynamically adapting GeoBlocks to the skew of
// the query workload.
//
// The layout follows the paper's Fig. 7: the trie structure is a flat
// array of 8-byte nodes (two 32-bit offsets — first child block and
// aggregate slot), with fanout 4 and one trie level per cell level;
// aggregate records live in a second region addressed by fixed-size
// slots. Offset 0 encodes "n/a" for both fields, exactly as in the paper.
//
// CachedBlock couples one trie to one core.GeoBlock and implements the
// adapted query algorithm of the paper's Fig. 8: per query cell it serves
// a cached record, combines cached direct children with scans, or falls
// back to the plain covering scan, recording statistics either way so the
// next Refresh re-ranks what is worth caching. SelectPartial exposes the
// same algorithm pre-finalisation for the sharded store's cross-shard
// partial merge.
//
// The cache is a lock-light concurrent serving structure (DESIGN.md
// Sec. 6): the trie is immutable once built and published through an
// atomic pointer (Refresh swaps a complete replacement), effectiveness
// counters are atomic, and query statistics are striped across
// cache-line-padded shards with bounded arenas (ShardedStats). Readers
// therefore never block on — or observe — a rebuild in progress.
package aggtrie
