package aggtrie

import (
	"testing"

	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
)

// deriveFixture caches a parent and exactly three of its children so the
// fourth is derivable.
func deriveFixture(t *testing.T) (*core.GeoBlock, *CachedBlock, cellid.ID) {
	t.Helper()
	b := buildTestBlock(t, 30000, 13, 41)
	root := enclosingRoot(b)
	parent := root.Children()[0]
	children := parent.Children()
	cells := []cellid.ID{parent, children[0], children[1], children[3]}
	cb := New(b, 1<<20)
	cb.trie.Store(BuildTrie(b, cells, 1<<20))
	cb.DeriveFromSiblings = true
	return b, cb, children[2]
}

func sumSpecs() []core.AggSpec {
	return []core.AggSpec{
		{Func: core.AggCount},
		{Col: 0, Func: core.AggSum},
		{Col: 1, Func: core.AggAvg},
	}
}

func TestSiblingDerivationMatchesDirect(t *testing.T) {
	b, cb, target := deriveFixture(t)

	got, err := cb.Select([]cellid.ID{target}, sumSpecs())
	if err != nil {
		t.Fatal(err)
	}
	want, err := b.SelectCovering([]cellid.ID{target}, sumSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != want.Count {
		t.Fatalf("derived count %d, want %d", got.Count, want.Count)
	}
	for i := range got.Values {
		if !approxEqual(got.Values[i], want.Values[i]) {
			t.Fatalf("derived value %d = %g, want %g", i, got.Values[i], want.Values[i])
		}
	}
	if cb.Metrics().DerivedHits != 1 {
		t.Fatalf("derived hits = %d, want 1", cb.Metrics().DerivedHits)
	}
}

func TestSiblingDerivationRefusedForMinMax(t *testing.T) {
	b, cb, target := deriveFixture(t)
	specs := []core.AggSpec{{Func: core.AggCount}, {Col: 0, Func: core.AggMin}}

	got, err := cb.Select([]cellid.ID{target}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if cb.Metrics().DerivedHits != 0 {
		t.Fatal("min/max query must not use derivation")
	}
	want, err := b.SelectCovering([]cellid.ID{target}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != want.Count || !approxEqual(got.Values[1], want.Values[1]) {
		t.Fatal("fallback result differs")
	}
}

func TestSiblingDerivationNeedsAllSiblings(t *testing.T) {
	b := buildTestBlock(t, 20000, 13, 42)
	root := enclosingRoot(b)
	parent := root.Children()[0]
	children := parent.Children()
	// Only two siblings cached: derivation impossible.
	cb := New(b, 1<<20)
	cb.trie.Store(BuildTrie(b, []cellid.ID{parent, children[0], children[1]}, 1<<20))
	cb.DeriveFromSiblings = true

	got, err := cb.Select([]cellid.ID{children[2]}, sumSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if cb.Metrics().DerivedHits != 0 {
		t.Fatal("derivation with missing sibling")
	}
	want, err := b.SelectCovering([]cellid.ID{children[2]}, sumSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != want.Count {
		t.Fatal("fallback result differs")
	}
}

func TestSiblingDerivationDisabledByDefault(t *testing.T) {
	b, cb, target := deriveFixture(t)
	cb.DeriveFromSiblings = false
	if _, err := cb.Select([]cellid.ID{target}, sumSpecs()); err != nil {
		t.Fatal(err)
	}
	if cb.Metrics().DerivedHits != 0 {
		t.Fatal("derivation used while disabled")
	}
	_ = b
}

func TestSiblingDerivationInWorkload(t *testing.T) {
	// End-to-end: derivation on a realistic workload never changes
	// results.
	b := buildTestBlock(t, 30000, 13, 43)
	cb := New(b, 1<<18)
	cb.DeriveFromSiblings = true
	specs := sumSpecs()
	for round := 0; round < 3; round++ {
		for _, p := range queryPolys() {
			cov := testCovering(b, p)
			got, err := cb.Select(cov, specs)
			if err != nil {
				t.Fatal(err)
			}
			want, err := b.SelectCovering(cov, specs)
			if err != nil {
				t.Fatal(err)
			}
			if got.Count != want.Count {
				t.Fatalf("round %d: %d != %d", round, got.Count, want.Count)
			}
			for i := range got.Values {
				if !approxEqual(got.Values[i], want.Values[i]) {
					t.Fatalf("round %d value %d differs", round, i)
				}
			}
		}
		cb.Refresh()
	}
}
