package resultcache

import (
	"container/list"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
	"geoblocks/internal/geom"
)

// DefaultMinHits is the admission floor applied when a cache is
// configured with MinHits 0 by a layer that wants "the default" rather
// than admit-on-first-miss (the daemon flag default). The engine itself
// treats MinHits 0 literally: every miss is admissible.
const DefaultMinHits = 2

// Config configures one dataset's result cache.
type Config struct {
	// Dataset is the owning dataset's name, the first component of every
	// canonical footprint (diagnostics and the top-K hotness report).
	Dataset string
	// MaxBytes is the byte budget over everything the cache retains:
	// result entries plus memoized coverings. Must be positive.
	MaxBytes int64
	// MinHits is the admission floor: a footprint must have been seen
	// this many times recently before its result is admitted. 0 admits on
	// first miss.
	MinHits int
}

// Key is the canonical identity of a query before its covering is known:
// the hash of the normalized query geometry plus the planned pyramid
// level, the MaxError bucket and the canonical aggregate spec. The
// serving layer derives it with PolygonKey / RectKey from exactly the
// inputs the router plans with.
type Key struct {
	Geom   uint64
	Level  int
	Bucket int
	Aggs   string
}

// hash folds the key into the 64-bit footprint-hotness key.
func (k Key) hash() uint64 {
	h := fnvOffset
	h = fnvMix64(h, k.Geom)
	h = fnvMix64(h, uint64(k.Level)<<32|uint64(uint32(k.Bucket)))
	for i := 0; i < len(k.Aggs); i++ {
		h = fnvMixByte(h, k.Aggs[i])
	}
	return h
}

// indexKey locates a memoized covering: coverings depend only on the
// query geometry and the grid level, so all aggregate specs and error
// buckets of one region share a single memo.
type indexKey struct {
	geom  uint64
	level int
}

// entryKey locates a cached result by its canonical footprint: the
// normalized covering token (128 bits — two independent hashes over the
// covering cells, making token collisions across distinct coverings
// negligible), the planned level, the MaxError bucket and the aggregate
// spec. Two query geometries that normalize to the same covering share
// one entry.
type entryKey struct {
	token  [2]uint64
	level  int
	bucket int
	aggs   string
}

// record is a memoized covering: the cells the router computed for a
// geometry at a level, plus the guaranteed error bound of that covering.
// Both are functions of geometry and level alone — independent of the
// data — so records survive generation bumps: after an invalidation a
// hot query re-aggregates but never re-covers.
type record struct {
	cells []cellid.ID
	bound float64
	token [2]uint64
	node  *list.Element
	bytes int64
	// hot is the footprint-hash whose admission brought the record in,
	// consulted when the record is an eviction victim.
	hot uint64
}

// entry is one cached result, tagged with the dataset generation it was
// computed at; reads verify the tag and never serve across a bump.
type entry struct {
	res   core.Result
	gen   uint64
	node  *list.Element
	bytes int64
	hot   uint64
	// hits counts how often the entry was served; lastHitGen is the
	// generation current at the most recent serve (the top-K report).
	hits       uint64
	lastHitGen uint64
}

// lruNode is what the shared LRU list stores: which map the victim lives
// in and under which key. Coverings and entries compete for the same
// byte budget, so one recency order spans both.
type lruNode struct {
	isEntry bool
	ikey    indexKey
	ekey    entryKey
}

// Outcome classifies a Lookup.
type Outcome int

const (
	// Miss: nothing usable is cached; the caller computes the covering
	// and the result, then offers both with Store.
	Miss Outcome = iota
	// MissCovered: no current result, but the covering is memoized; the
	// caller skips covering computation, re-aggregates over the returned
	// cells, and offers the result with Store.
	MissCovered
	// Hit: the returned result is current — serve it as is.
	Hit
)

// Cache is a hot-region adaptive result cache for one dataset's serving
// tier. It fronts the store's scatter-gather router: repeated queries
// over hot regions are answered from a canonical-footprint map instead
// of paying covering computation, per-shard fan-out and merge again.
//
// Admission is hotness-gated: a footprint must repeat (MinHits floor)
// before it is cached at all, and once the byte budget is full a
// candidate must additionally be recently hotter than the LRU victims it
// would displace — cold or one-off traffic can never wash out a hot
// working set. Invalidation is precise: entries carry the dataset
// generation they were computed at and are verified on every read, so a
// data mutation bumps one counter and never flushes anything eagerly.
//
// All methods are safe for concurrent use; the hot path takes one short
// mutex hold (map lookup + recency bump + result copy).
type Cache struct {
	dataset  string
	maxBytes int64
	minHits  int

	gen atomic.Uint64

	mu      sync.Mutex
	index   map[indexKey]*record
	entries map[entryKey]*entry
	lru     *list.List // front = most recent
	bytes   int64

	hot *hotness

	hits           atomic.Uint64
	misses         atomic.Uint64
	staleMisses    atomic.Uint64
	admissions     atomic.Uint64
	rejectedCold   atomic.Uint64
	rejectedColder atomic.Uint64
	evictions      atomic.Uint64
	invalidations  atomic.Uint64
	appendInvals   atomic.Uint64
	foldInvals     atomic.Uint64
}

// New creates a result cache. MaxBytes must be positive and MinHits
// non-negative.
func New(cfg Config) (*Cache, error) {
	if cfg.MaxBytes <= 0 {
		return nil, fmt.Errorf("resultcache: byte budget must be positive, got %d", cfg.MaxBytes)
	}
	if cfg.MinHits < 0 {
		return nil, fmt.Errorf("resultcache: min hits must be >= 0, got %d", cfg.MinHits)
	}
	return &Cache{
		dataset:  cfg.Dataset,
		maxBytes: cfg.MaxBytes,
		minHits:  cfg.MinHits,
		index:    make(map[indexKey]*record),
		entries:  make(map[entryKey]*entry),
		lru:      list.New(),
		hot:      newHotness(),
	}, nil
}

// Generation returns the dataset generation reads are verified against.
func (c *Cache) Generation() uint64 { return c.gen.Load() }

// Invalidate bumps the dataset generation. Every cached result computed
// before the bump becomes unservable — verified lazily on read, never by
// walking or flushing the cache — while memoized coverings, which do not
// depend on the data, stay warm.
func (c *Cache) Invalidate() {
	c.gen.Add(1)
	c.invalidations.Add(1)
}

// InvalidateAppend is Invalidate for a delta append (streaming ingest):
// one generation bump per acknowledged batch, taken after the rows are
// visible to queries and before the ingest is acknowledged, so no cached
// answer computed without the batch can be served after its ack. The bump
// semantics are identical to Invalidate — memoized coverings survive, and
// entries are reclaimed lazily — only the accounting differs.
func (c *Cache) InvalidateAppend() {
	c.appendInvals.Add(1)
	c.Invalidate()
}

// InvalidateFold is Invalidate for a compaction fold: exactly one
// generation bump per fold, taken under the same write lock that swaps
// the folded blocks in. A fold moves rows from delta to base without
// changing any query answer, but the swap also replaces the per-shard
// aggtrie caches and pyramid levels, so cached results must be recomputed
// rather than replayed against re-associated sums.
func (c *Cache) InvalidateFold() {
	c.foldInvals.Add(1)
	c.Invalidate()
}

// Lookup resolves a query against the cache at the given generation
// (read once by the caller at the start of the query, under whatever
// synchronisation orders queries against data mutations). On Hit the
// returned Result is a private copy. On MissCovered the returned cells
// and bound replay the router's covering computation and must be treated
// as read-only; the entry that went stale, if any, is dropped and its
// bytes reclaimed immediately.
func (c *Cache) Lookup(k Key, gen uint64) (core.Result, []cellid.ID, float64, Outcome) {
	c.mu.Lock()
	rec, ok := c.index[indexKey{k.Geom, k.Level}]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		c.hot.touch(k.hash())
		return core.Result{}, nil, 0, Miss
	}
	c.lru.MoveToFront(rec.node)
	ekey := entryKey{rec.token, k.Level, k.Bucket, k.Aggs}
	e, ok := c.entries[ekey]
	if ok && e.gen == gen {
		c.lru.MoveToFront(e.node)
		e.hits++
		e.lastHitGen = gen
		res := e.res
		res.Values = append([]float64(nil), e.res.Values...)
		c.mu.Unlock()
		c.hits.Add(1)
		return res, nil, 0, Hit
	}
	if ok {
		// Stale: computed at an older generation. Reclaim it now rather
		// than letting a dead result age out of the LRU.
		c.removeEntryLocked(ekey, e)
		c.staleMisses.Add(1)
	}
	cells, bound := rec.cells, rec.bound
	c.mu.Unlock()
	c.misses.Add(1)
	c.hot.touch(k.hash())
	return core.Result{}, cells, bound, MissCovered
}

// Store offers a computed result (and the covering it was computed over)
// for caching. cells and bound must be exactly what the router executed:
// the covering at the key's planned level and its guaranteed error
// bound; gen must be the generation Lookup validated against. Admission
// is decided here: the footprint's recent hit score must clear the
// MinHits floor, and under byte pressure it must beat the recent score
// of every LRU victim it displaces. Re-admission of a footprint that is
// already cached (the refresh after an invalidation) skips the gate.
// The stored result keeps its own copy of everything.
func (c *Cache) Store(k Key, cells []cellid.ID, bound float64, res core.Result, gen uint64) {
	hk := k.hash()
	score := c.hot.estimate(hk)
	resBytes := entryOverhead + int64(8*len(res.Values)) + int64(len(k.Aggs))
	covBytes := recordOverhead + int64(8*len(cells))

	c.mu.Lock()
	defer c.mu.Unlock()

	rec, haveRec := c.index[indexKey{k.Geom, k.Level}]
	var ekey entryKey
	if haveRec {
		ekey = entryKey{rec.token, k.Level, k.Bucket, k.Aggs}
		if e, ok := c.entries[ekey]; ok {
			// Refresh in place (typically after an invalidation): the
			// entry earned admission already; keep its hit history.
			c.bytes += resBytes - e.bytes
			e.bytes = resBytes
			e.res = cloneResult(res)
			e.gen = gen
			c.lru.MoveToFront(e.node)
			c.evictToBudgetLocked(hk, score)
			return
		}
	}

	if c.minHits > 0 && score < uint32(c.minHits) {
		c.rejectedCold.Add(1)
		return
	}
	need := resBytes
	if !haveRec {
		need += covBytes
	}
	if need > c.maxBytes {
		c.rejectedCold.Add(1)
		return
	}
	if !c.makeRoomLocked(need, hk, score) {
		c.rejectedColder.Add(1)
		return
	}

	if !haveRec {
		rec = &record{
			cells: append([]cellid.ID(nil), cells...),
			bound: bound,
			token: coveringToken(cells),
			bytes: covBytes,
			hot:   hk,
		}
		rec.node = c.lru.PushFront(&lruNode{ikey: indexKey{k.Geom, k.Level}})
		c.index[indexKey{k.Geom, k.Level}] = rec
		c.bytes += covBytes
		ekey = entryKey{rec.token, k.Level, k.Bucket, k.Aggs}
	}
	if old, ok := c.entries[ekey]; ok {
		// An entry under this footprint already exists but was orphaned:
		// its covering record was evicted (a Hit moves the entry ahead of
		// its record in the LRU, so records go first), and the same
		// covering is now being re-admitted under a fresh record.
		// Overwriting the map slot without this removal would leak the old
		// entry's bytes and leave its LRU node dangling.
		c.removeEntryLocked(ekey, old)
	}
	e := &entry{
		res:   cloneResult(res),
		gen:   gen,
		bytes: resBytes,
		hot:   hk,
	}
	e.node = c.lru.PushFront(&lruNode{isEntry: true, ekey: ekey})
	c.entries[ekey] = e
	c.bytes += resBytes
	c.admissions.Add(1)
}

// makeRoomLocked evicts LRU victims until need bytes fit under the
// budget. The adaptive part of admission lives here: a victim is only
// evicted if the candidate's recent hit score beats the victim's — so
// when the budget is full of genuinely hot footprints, the effective
// admission threshold rises to whatever the coldest resident scores,
// and a flood of one-off queries cannot displace the working set. A
// victim carrying the candidate's own footprint hash is always
// evictable: it is being replaced by the same footprint, and scoring it
// against itself would tie forever and wedge re-admission. A false
// return leaves the cache unchanged (minus any victims already evicted,
// which were colder than the candidate anyway).
func (c *Cache) makeRoomLocked(need int64, hk uint64, score uint32) bool {
	for c.bytes+need > c.maxBytes {
		victim := c.lru.Back()
		if victim == nil {
			return false
		}
		n := victim.Value.(*lruNode)
		victimHot, live := uint64(0), false
		if n.isEntry {
			if e, ok := c.entries[n.ekey]; ok && e.node == victim {
				victimHot, live = e.hot, true
			}
		} else {
			if rec, ok := c.index[n.ikey]; ok && rec.node == victim {
				victimHot, live = rec.hot, true
			}
		}
		if !live {
			// Stale node: its map entry is gone or re-keyed to a newer
			// node. Nothing to reclaim — drop the node and keep scanning.
			c.lru.Remove(victim)
			continue
		}
		if victimHot != hk && c.hot.estimate(victimHot) >= score {
			return false
		}
		c.evictLocked(victim)
	}
	return true
}

// evictToBudgetLocked trims unconditionally colder-than-candidate
// victims after an in-place refresh grew an entry.
func (c *Cache) evictToBudgetLocked(hk uint64, score uint32) {
	c.makeRoomLocked(0, hk, score)
}

// evictLocked removes one LRU node and its backing map entry. The
// element itself is removed as well as the node recorded on the map
// value, so a victim never survives in the list under a missing or
// re-keyed map slot.
func (c *Cache) evictLocked(el *list.Element) {
	n := el.Value.(*lruNode)
	c.lru.Remove(el)
	if n.isEntry {
		if e, ok := c.entries[n.ekey]; ok {
			if e.node != el {
				c.lru.Remove(e.node)
			}
			delete(c.entries, n.ekey)
			c.bytes -= e.bytes
		}
	} else {
		if rec, ok := c.index[n.ikey]; ok {
			if rec.node != el {
				c.lru.Remove(rec.node)
			}
			delete(c.index, n.ikey)
			c.bytes -= rec.bytes
		}
	}
	c.evictions.Add(1)
}

// removeEntryLocked drops a stale entry without counting an eviction
// (the budget did not force it out; the data moved on).
func (c *Cache) removeEntryLocked(ekey entryKey, e *entry) {
	c.lru.Remove(e.node)
	delete(c.entries, ekey)
	c.bytes -= e.bytes
}

func cloneResult(res core.Result) core.Result {
	out := res
	out.Values = append([]float64(nil), res.Values...)
	return out
}

// Approximate fixed per-item overheads: struct, map bucket and LRU node
// costs. Exact accounting is not the point — the budget must bound real
// memory to the right order and be monotone in what is stored.
const (
	recordOverhead = 160
	entryOverhead  = 176
)

// Stats is a point-in-time snapshot of the cache's effectiveness
// counters, serialized into /v1/stats and /metrics by the HTTP layer.
type Stats struct {
	MaxBytes int64 `json:"max_bytes"`
	Bytes    int64 `json:"bytes"`
	// Entries counts cached results; Coverings counts memoized covering
	// records (data-independent, they survive invalidations).
	Entries   int `json:"entries"`
	Coverings int `json:"coverings"`
	// MinHits is the configured admission floor; under byte pressure the
	// effective threshold is higher (a candidate must also out-score the
	// LRU victims it would displace — RejectedColder counts those).
	MinHits    int    `json:"min_hits"`
	Generation uint64 `json:"generation"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	// StaleMisses are misses that found an entry from an older
	// generation (served fresh, entry reclaimed); they are included in
	// Misses.
	StaleMisses    uint64 `json:"stale_misses"`
	Admissions     uint64 `json:"admissions"`
	RejectedCold   uint64 `json:"rejected_cold"`
	RejectedColder uint64 `json:"rejected_colder"`
	Evictions      uint64 `json:"evictions"`
	Invalidations  uint64 `json:"invalidations"`
	// AppendInvalidations and FoldInvalidations break Invalidations down
	// by cause on the streaming write path: one per acknowledged ingest
	// batch, and exactly one per compaction fold. The remainder are
	// generic (Update/Drop/reconfigure) invalidations.
	AppendInvalidations uint64 `json:"append_invalidations"`
	FoldInvalidations   uint64 `json:"fold_invalidations"`
	// HotnessTracked / HotnessDropped describe the admission tracker:
	// footprints currently scored, and candidates discarded by its
	// capacity bound.
	HotnessTracked int    `json:"hotness_tracked"`
	HotnessDropped uint64 `json:"hotness_dropped"`
}

// HitRatio is hits / (hits + misses), 0 before any traffic.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the counters. Counter reads are individually atomic;
// the snapshot as a whole may be skewed by in-flight queries.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries, coverings, bytes := len(c.entries), len(c.index), c.bytes
	c.mu.Unlock()
	return Stats{
		MaxBytes:            c.maxBytes,
		Bytes:               bytes,
		Entries:             entries,
		Coverings:           coverings,
		MinHits:             c.minHits,
		Generation:          c.gen.Load(),
		Hits:                c.hits.Load(),
		Misses:              c.misses.Load(),
		StaleMisses:         c.staleMisses.Load(),
		Admissions:          c.admissions.Load(),
		RejectedCold:        c.rejectedCold.Load(),
		RejectedColder:      c.rejectedColder.Load(),
		Evictions:           c.evictions.Load(),
		Invalidations:       c.invalidations.Load(),
		AppendInvalidations: c.appendInvals.Load(),
		FoldInvalidations:   c.foldInvals.Load(),
		HotnessTracked:      c.hot.tracked(),
		HotnessDropped:      c.hot.dropped.Load(),
	}
}

// FootprintStat describes one cached footprint for the top-K hotness
// report: what is hot, how often it was served, and at which generation
// it was last current.
type FootprintStat struct {
	// Footprint is the canonical footprint token:
	// dataset|cov=<token>|level=<L>|err=<bucket>|aggs=<spec>.
	Footprint         string `json:"footprint"`
	Hits              uint64 `json:"hits"`
	LastHitGeneration uint64 `json:"last_hit_generation"`
}

// TopFootprints returns the k most-served cached footprints, hottest
// first (ties broken by footprint token for a deterministic report).
func (c *Cache) TopFootprints(k int) []FootprintStat {
	c.mu.Lock()
	out := make([]FootprintStat, 0, len(c.entries))
	for ekey, e := range c.entries {
		out = append(out, FootprintStat{
			Footprint: fmt.Sprintf("%s|cov=%016x%016x|level=%d|err=%d|aggs=%s",
				c.dataset, ekey.token[0], ekey.token[1], ekey.level, ekey.bucket, ekey.aggs),
			Hits:              e.hits,
			LastHitGeneration: e.lastHitGen,
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		return out[i].Footprint < out[j].Footprint
	})
	if k >= 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// ErrorBucket quantises a MaxError bound into the footprint key: a
// sentinel bucket for exact queries, otherwise the binary exponent of
// the bound. Queries whose bounds differ only within a factor of two
// share a bucket — they plan to the same pyramid level in all but edge
// cases, and the cached result's reported bound is the covering's own
// guarantee either way.
func ErrorBucket(maxError float64) int {
	if maxError <= 0 {
		return math.MinInt32 // exact: no finite bound shares this bucket
	}
	_, exp := math.Frexp(maxError)
	return exp
}

// PolygonKey derives the canonical query key of a polygon query: the
// FNV-1a hash of the polygon's normalized rings (orientation-normalised
// vertices, holes included) plus the planned level, error bucket and
// canonical aggregate spec.
func PolygonKey(p *geom.Polygon, level int, maxError float64, aggs string) Key {
	h := fnvOffset
	for _, v := range p.Outer() {
		h = fnvMix64(h, math.Float64bits(v.X))
		h = fnvMix64(h, math.Float64bits(v.Y))
	}
	for _, hole := range p.Holes() {
		h = fnvMixByte(h, 0xb1) // ring separator
		for _, v := range hole {
			h = fnvMix64(h, math.Float64bits(v.X))
			h = fnvMix64(h, math.Float64bits(v.Y))
		}
	}
	return Key{Geom: h, Level: level, Bucket: ErrorBucket(maxError), Aggs: aggs}
}

// RectKey derives the canonical query key of a rectangle query. Rects
// hash under a distinct tag, so a rectangle and its equivalent polygon
// form cache independently (their coverings normalize to one shared
// entry regardless).
func RectKey(r geom.Rect, level int, maxError float64, aggs string) Key {
	h := fnvMixByte(fnvOffset, 0x52) // 'R': rects hash apart from polygons
	h = fnvMix64(h, math.Float64bits(r.Min.X))
	h = fnvMix64(h, math.Float64bits(r.Min.Y))
	h = fnvMix64(h, math.Float64bits(r.Max.X))
	h = fnvMix64(h, math.Float64bits(r.Max.Y))
	return Key{Geom: h, Level: level, Bucket: ErrorBucket(maxError), Aggs: aggs}
}

// coveringToken is the normalized covering token: two independent 64-bit
// FNV-1a hashes over the canonical (sorted, disjoint) covering cells.
// 128 bits make accidental collisions between distinct coverings
// negligible at any plausible footprint population.
func coveringToken(cells []cellid.ID) [2]uint64 {
	h1, h2 := uint64(fnvOffset), uint64(fnvOffset2)
	h1 = fnvMix64(h1, uint64(len(cells)))
	h2 = fnvMix64(h2, uint64(len(cells)))
	for _, c := range cells {
		h1 = fnvMix64(h1, uint64(c))
		h2 = fnvMix64(h2, uint64(c)*0x9e3779b97f4a7c15+1)
	}
	return [2]uint64{h1, h2}
}

// FNV-1a, mixed 8 bytes at a time for speed on cell slices.
const (
	fnvOffset  uint64 = 0xcbf29ce484222325
	fnvOffset2 uint64 = 0x84222325cbf29ce4
	fnvPrime   uint64 = 0x100000001b3
)

func fnvMixByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

func fnvMix64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}
