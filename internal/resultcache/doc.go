// Package resultcache is the serving tier's hot-region adaptive result
// cache. GeoBlocks' per-block query cache (internal/aggtrie) accelerates
// covering traversal inside one block, but production traffic — map
// tiles over urban centers — is dominated by repeated whole queries
// over hot regions, and every repeat still pays covering computation,
// per-shard fan-out and merge. This package caches final answers at the
// layer above the router.
//
// Identity: a cached result is keyed by its canonical query footprint —
// dataset, normalized covering token (a 128-bit hash over the covering
// cells the router already computes), planned pyramid level, MaxError
// bucket and canonical aggregate spec. Geometry is canonicalized through
// the covering: two differently-phrased queries whose coverings
// normalize identically share one entry. A geometry-hash index in front
// of the footprint map memoizes each region's covering, so a hit pays
// neither covering computation nor fan-out, and a post-invalidation
// refresh pays only the re-aggregation (coverings are data-independent).
//
// Adaptivity: admission is gated on per-footprint hotness, tracked by
// the same sharded-stripe machinery the block cache uses for cell
// statistics (aggtrie.ShardedStats): a footprint must repeat before it
// is cached, and under byte pressure it must additionally out-score the
// LRU victims it would displace. Scores age by periodic halving, so the
// threshold adapts to where current traffic concentrates.
//
// Correctness: entries carry the dataset generation they were computed
// at and are verified on every read; a data mutation bumps one counter
// and never serves stale bytes nor flushes the cache. Because the
// store's single-worker merge path is deterministic, a cached answer is
// bit-identical to recomputation at the same generation.
package resultcache
