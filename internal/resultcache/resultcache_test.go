package resultcache

import (
	"fmt"
	"testing"

	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
	"geoblocks/internal/geom"
)

func testKey(i int) Key {
	return Key{Geom: uint64(i)*0x9e3779b97f4a7c15 + 7, Level: 14, Bucket: 0, Aggs: "count"}
}

func testCells(i, n int) []cellid.ID {
	cells := make([]cellid.ID, n)
	for j := range cells {
		cells[j] = cellid.ID(i*1000 + j)
	}
	return cells
}

func testResult(i int) core.Result {
	return core.Result{Count: uint64(100 + i), Values: []float64{float64(i) * 1.5}, CellsVisited: 7, Level: 14}
}

// mustCache builds a cache with admit-on-first-miss unless minHits says
// otherwise.
func mustCache(t *testing.T, maxBytes int64, minHits int) *Cache {
	t.Helper()
	c, err := New(Config{Dataset: "taxi", MaxBytes: maxBytes, MinHits: minHits})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{MaxBytes: 0}); err == nil {
		t.Fatal("want error for zero byte budget")
	}
	if _, err := New(Config{MaxBytes: -1}); err == nil {
		t.Fatal("want error for negative byte budget")
	}
	if _, err := New(Config{MaxBytes: 1 << 20, MinHits: -1}); err == nil {
		t.Fatal("want error for negative min hits")
	}
}

func TestMissStoreHit(t *testing.T) {
	c := mustCache(t, 1<<20, 0)
	k := testKey(1)
	gen := c.Generation()

	if _, _, _, out := c.Lookup(k, gen); out != Miss {
		t.Fatalf("cold lookup: got %v, want Miss", out)
	}
	c.Store(k, testCells(1, 8), 0.25, testResult(1), gen)

	res, cells, bound, out := c.Lookup(k, gen)
	if out != Hit {
		t.Fatalf("after store: got %v, want Hit", out)
	}
	if cells != nil || bound != 0 {
		t.Fatalf("hit must not return covering data, got %d cells, bound %v", len(cells), bound)
	}
	want := testResult(1)
	if res.Count != want.Count || len(res.Values) != 1 || res.Values[0] != want.Values[0] || res.CellsVisited != want.CellsVisited {
		t.Fatalf("hit result %+v != stored %+v", res, want)
	}

	// The served result is a private copy: mutating it must not corrupt
	// the cache.
	res.Values[0] = -999
	res2, _, _, _ := c.Lookup(k, gen)
	if res2.Values[0] != want.Values[0] {
		t.Fatal("cached values were corrupted through a served result")
	}

	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Admissions != 1 || s.Entries != 1 || s.Coverings != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.Bytes <= 0 || s.Bytes > s.MaxBytes {
		t.Fatalf("bytes %d out of range", s.Bytes)
	}
	if got := s.HitRatio(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit ratio %v, want 2/3", got)
	}
}

func TestMinHitsAdmissionFloor(t *testing.T) {
	c := mustCache(t, 1<<20, 2)
	k := testKey(2)
	gen := c.Generation()

	// First sighting: score 1 < 2, result rejected.
	c.Lookup(k, gen)
	c.Store(k, testCells(2, 4), 0, testResult(2), gen)
	if _, _, _, out := c.Lookup(k, gen); out != Miss {
		t.Fatalf("after cold store: got %v, want Miss (rejected)", out)
	}
	if s := c.Stats(); s.RejectedCold != 1 || s.Admissions != 0 {
		t.Fatalf("stats %+v", s)
	}

	// The second lookup above was the second sighting: score now clears
	// the floor.
	c.Store(k, testCells(2, 4), 0, testResult(2), gen)
	if _, _, _, out := c.Lookup(k, gen); out != Hit {
		t.Fatalf("after hot store: got %v, want Hit", out)
	}
}

func TestInvalidationServesNothingStaleAndKeepsCovering(t *testing.T) {
	c := mustCache(t, 1<<20, 0)
	k := testKey(3)
	cells := testCells(3, 16)
	gen := c.Generation()

	c.Lookup(k, gen)
	c.Store(k, cells, 0.125, testResult(3), gen)
	if _, _, _, out := c.Lookup(k, gen); out != Hit {
		t.Fatal("want Hit before invalidation")
	}

	c.Invalidate()
	newGen := c.Generation()
	if newGen != gen+1 {
		t.Fatalf("generation %d, want %d", newGen, gen+1)
	}

	// The stale result must not be served; the memoized covering must be.
	res, gotCells, bound, out := c.Lookup(k, newGen)
	if out != MissCovered {
		t.Fatalf("after invalidation: got %v, want MissCovered", out)
	}
	if res.Count != 0 {
		t.Fatal("stale result leaked through invalidation")
	}
	if len(gotCells) != len(cells) || gotCells[0] != cells[0] || bound != 0.125 {
		t.Fatalf("covering memo lost: %d cells, bound %v", len(gotCells), bound)
	}

	s := c.Stats()
	if s.StaleMisses != 1 || s.Invalidations != 1 || s.Entries != 0 || s.Coverings != 1 {
		t.Fatalf("stats %+v", s)
	}

	// Refresh at the new generation serves again.
	c.Store(k, cells, 0.125, testResult(30), newGen)
	res, _, _, out = c.Lookup(k, newGen)
	if out != Hit || res.Count != testResult(30).Count {
		t.Fatalf("refresh not served: %v %+v", out, res)
	}
	// And an old-generation reader never sees the new entry as current.
	if _, _, _, out := c.Lookup(k, gen); out != MissCovered {
		t.Fatalf("old-generation lookup: got %v, want MissCovered", out)
	}
}

func TestAdaptiveEvictionPrefersHotFootprints(t *testing.T) {
	// Budget fits roughly three footprints (covering record + entry each).
	perFootprint := recordOverhead + 8*4 + entryOverhead + 8 + int64(len("count"))
	c := mustCache(t, 3*perFootprint+32, 0)
	gen := c.Generation()

	// Three residents, each hit several times: genuinely hot.
	for i := 0; i < 3; i++ {
		k := testKey(10 + i)
		for j := 0; j < 5; j++ {
			c.Lookup(k, gen)
		}
		c.Store(k, testCells(10+i, 4), 0, testResult(10+i), gen)
	}
	if s := c.Stats(); s.Entries != 3 {
		t.Fatalf("want 3 residents, got %+v", s)
	}

	// A one-off footprint must not displace them.
	cold := testKey(99)
	c.Lookup(cold, gen)
	c.Store(cold, testCells(99, 4), 0, testResult(99), gen)
	s := c.Stats()
	if s.Entries != 3 || s.Evictions != 0 || s.RejectedColder != 1 {
		t.Fatalf("cold candidate displaced hot residents: %+v", s)
	}

	// A hotter-than-resident footprint does displace the LRU tail.
	hot := testKey(50)
	for j := 0; j < 20; j++ {
		c.Lookup(hot, gen)
	}
	c.Store(hot, testCells(50, 4), 0, testResult(50), gen)
	s = c.Stats()
	if s.Evictions == 0 {
		t.Fatalf("hot candidate failed to displace: %+v", s)
	}
	if _, _, _, out := c.Lookup(hot, gen); out != Hit {
		t.Fatal("hot candidate not admitted")
	}
	// The LRU tail was footprint 10 (least recently touched resident).
	if _, _, _, out := c.Lookup(testKey(12), gen); out != Hit {
		t.Fatal("most recent resident should have survived")
	}
}

func TestBudgetNeverExceededUnderChurn(t *testing.T) {
	c := mustCache(t, 4096, 0)
	gen := c.Generation()
	for i := 0; i < 200; i++ {
		k := testKey(i)
		// Increasing hotness so later footprints keep displacing earlier
		// ones and eviction actually runs.
		for j := 0; j <= i/10; j++ {
			c.Lookup(k, gen)
		}
		c.Store(k, testCells(i, 8), 0, testResult(i), gen)
		if s := c.Stats(); s.Bytes > s.MaxBytes {
			t.Fatalf("budget exceeded at i=%d: %+v", i, s)
		}
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Fatalf("churn produced no evictions: %+v", s)
	}
	if s.Entries == 0 {
		t.Fatalf("cache emptied out: %+v", s)
	}
}

func TestOversizedValueRejected(t *testing.T) {
	c := mustCache(t, 512, 0)
	gen := c.Generation()
	k := testKey(7)
	c.Lookup(k, gen)
	big := core.Result{Count: 1, Values: make([]float64, 4096)}
	c.Store(k, testCells(7, 4), 0, big, gen)
	if s := c.Stats(); s.Entries != 0 || s.RejectedCold != 1 {
		t.Fatalf("oversized entry not rejected: %+v", s)
	}
}

func TestSharedCoveringAcrossAggSpecs(t *testing.T) {
	c := mustCache(t, 1<<20, 0)
	gen := c.Generation()
	cells := testCells(4, 12)

	kCount := Key{Geom: 42, Level: 14, Bucket: 0, Aggs: "count"}
	kSum := Key{Geom: 42, Level: 14, Bucket: 0, Aggs: "sum(fare)"}

	c.Lookup(kCount, gen)
	c.Store(kCount, cells, 0.5, testResult(4), gen)

	// Same geometry, different aggregate spec: the covering memo is
	// shared, so the very first lookup already skips covering work.
	_, gotCells, bound, out := c.Lookup(kSum, gen)
	if out != MissCovered || len(gotCells) != len(cells) || bound != 0.5 {
		t.Fatalf("covering memo not shared: %v, %d cells", out, len(gotCells))
	}
	c.Store(kSum, cells, 0.5, testResult(44), gen)

	s := c.Stats()
	if s.Entries != 2 || s.Coverings != 1 {
		t.Fatalf("want 2 entries over 1 covering, got %+v", s)
	}
	r1, _, _, _ := c.Lookup(kCount, gen)
	r2, _, _, _ := c.Lookup(kSum, gen)
	if r1.Count == r2.Count {
		t.Fatal("agg specs conflated")
	}
}

func TestTopFootprints(t *testing.T) {
	c := mustCache(t, 1<<20, 0)
	gen := c.Generation()
	for i := 0; i < 5; i++ {
		k := testKey(20 + i)
		c.Lookup(k, gen)
		c.Store(k, testCells(20+i, 4), 0, testResult(20+i), gen)
		for j := 0; j <= i; j++ {
			c.Lookup(k, gen)
		}
	}
	top := c.TopFootprints(3)
	if len(top) != 3 {
		t.Fatalf("want 3 footprints, got %d", len(top))
	}
	if top[0].Hits != 5 || top[1].Hits != 4 || top[2].Hits != 3 {
		t.Fatalf("not sorted by hits: %+v", top)
	}
	for _, f := range top {
		if f.LastHitGeneration != gen {
			t.Fatalf("last-hit generation %d, want %d", f.LastHitGeneration, gen)
		}
		wantPrefix := "taxi|cov="
		if len(f.Footprint) < len(wantPrefix) || f.Footprint[:len(wantPrefix)] != wantPrefix {
			t.Fatalf("footprint %q lacks dataset prefix", f.Footprint)
		}
	}
	if got := c.TopFootprints(100); len(got) != 5 {
		t.Fatalf("unclamped top-K returned %d", len(got))
	}
}

func TestErrorBucket(t *testing.T) {
	if ErrorBucket(0) != ErrorBucket(-1) {
		t.Fatal("exact queries must share one bucket")
	}
	if ErrorBucket(0.3) != ErrorBucket(0.4) {
		t.Fatal("bounds within 2x should share a bucket")
	}
	if ErrorBucket(0.3) == ErrorBucket(1.2) {
		t.Fatal("4x-apart bounds should differ")
	}
	// No finite bound may collide with the exact bucket (0.5 has Frexp
	// exponent 0, 1e300 has ~997 — probe a wide sweep).
	for _, b := range []float64{1e-300, 0.25, 0.5, 1, 2, 1e300} {
		if ErrorBucket(b) == ErrorBucket(0) {
			t.Fatalf("bound %v collided with exact bucket", b)
		}
	}
}

func TestKeyDerivation(t *testing.T) {
	p1 := geom.RegularPolygon(geom.Pt(10, 10), 3, 6)
	p2 := geom.RegularPolygon(geom.Pt(10, 10), 3.0001, 6)
	r := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}

	k1 := PolygonKey(p1, 14, 0, "count")
	if k1 != PolygonKey(p1, 14, 0, "count") {
		t.Fatal("polygon key not deterministic")
	}
	if k1.Geom == PolygonKey(p2, 14, 0, "count").Geom {
		t.Fatal("distinct polygons collided")
	}
	if k1 == PolygonKey(p1, 13, 0, "count") {
		t.Fatal("levels conflated")
	}
	if k1 == PolygonKey(p1, 14, 0.5, "count") {
		t.Fatal("error buckets conflated")
	}
	if k1 == PolygonKey(p1, 14, 0, "sum(fare)") {
		t.Fatal("agg specs conflated")
	}

	// A polygon with a hole hashes apart from its outer ring alone.
	withHole := geom.RegularPolygon(geom.Pt(10, 10), 3, 6)
	hole := []geom.Point{geom.Pt(9.5, 9.5), geom.Pt(9.5, 10.5), geom.Pt(10.5, 10.5), geom.Pt(10.5, 9.5)}
	if err := withHole.AddHole(hole); err != nil {
		t.Fatalf("AddHole: %v", err)
	}
	if PolygonKey(withHole, 14, 0, "count").Geom == k1.Geom {
		t.Fatal("hole ignored by geometry hash")
	}

	kr := RectKey(r, 14, 0, "count")
	if kr != RectKey(r, 14, 0, "count") {
		t.Fatal("rect key not deterministic")
	}
	if kr == RectKey(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 2)}, 14, 0, "count") {
		t.Fatal("distinct rects collided")
	}
}

func TestCoveringToken(t *testing.T) {
	a := testCells(1, 10)
	if coveringToken(a) != coveringToken(testCells(1, 10)) {
		t.Fatal("token not deterministic")
	}
	if coveringToken(a) == coveringToken(testCells(2, 10)) {
		t.Fatal("distinct coverings collided")
	}
	if coveringToken(a) == coveringToken(a[:9]) {
		t.Fatal("prefix covering collided")
	}
}

func TestHotnessTouchEstimateAge(t *testing.T) {
	h := newHotness()
	key := uint64(0xdeadbeef)
	for i := 1; i <= 6; i++ {
		if got := h.touch(key); got != uint32(i) {
			t.Fatalf("touch %d: got %d", i, got)
		}
	}
	if h.estimate(key) != 6 {
		t.Fatalf("estimate %d, want 6", h.estimate(key))
	}
	if h.estimate(0x1234) != 0 {
		t.Fatal("unknown key must score 0")
	}

	h.age()
	if h.estimate(key) != 3 {
		t.Fatalf("after aging: %d, want 3", h.estimate(key))
	}
	h.age()
	h.age()
	if h.estimate(key) != 0 {
		t.Fatalf("after decay to zero: %d", h.estimate(key))
	}
	if h.tracked() != 0 {
		t.Fatalf("zero-score keys not dropped: %d tracked", h.tracked())
	}
}

func TestHotnessShardCapDropsOverflow(t *testing.T) {
	h := newHotness()
	// Fill one stripe past its cap. Keys are crafted per-stripe by brute
	// force: touch until the stripe for each candidate matches stripe 0.
	// Residents are touched twice so the age-before-drop pass (which
	// halves counts) cannot clear them; the stripe genuinely stays full.
	target := &h.shards[0]
	inserted := 0
	var overflow uint64
	for k := uint64(1); ; k++ {
		if h.shardFor(k) != target {
			continue
		}
		if inserted == hotShardCap {
			overflow = k
			break
		}
		h.touch(k)
		h.touch(k)
		inserted++
	}
	if got := h.touch(overflow); got != 0 {
		t.Fatalf("overflow key scored %d, want 0 (dropped)", got)
	}
	if target.countsLen() > hotShardCap {
		t.Fatalf("stripe grew past cap: %d", target.countsLen())
	}
	if h.dropped.Load() == 0 {
		t.Fatal("overflow not counted as dropped")
	}
}

func (sh *hotShard) countsLen() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.counts)
}

func TestConcurrentCacheAccess(t *testing.T) {
	c := mustCache(t, 1<<20, 0)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				k := testKey(i % 37)
				gen := c.Generation()
				res, cells, bound, out := c.Lookup(k, gen)
				switch out {
				case Hit:
					_ = res.Count
				case Miss, MissCovered:
					_ = cells
					c.Store(k, testCells(i%37, 4), bound, testResult(i%37), gen)
				}
				if g == 0 && i%100 == 99 {
					c.Invalidate()
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	s := c.Stats()
	if s.Bytes > s.MaxBytes {
		t.Fatalf("budget exceeded: %+v", s)
	}
	if s.Invalidations != 5 {
		t.Fatalf("invalidations %d, want 5", s.Invalidations)
	}
	_ = fmt.Sprintf("%+v", s)
}

// assertLRUConsistent walks the shared LRU list and fails if any node no
// longer resolves to a live map object that points back at it, or if the
// list length disagrees with the maps — the invariant whose violation
// made eviction dereference nil under byte pressure.
func assertLRUConsistent(t *testing.T, c *Cache) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	if got, want := c.lru.Len(), len(c.entries)+len(c.index); got != want {
		t.Fatalf("LRU holds %d nodes for %d entries + %d coverings", got, len(c.entries), len(c.index))
	}
	for el := c.lru.Front(); el != nil; el = el.Next() {
		n := el.Value.(*lruNode)
		if n.isEntry {
			e, ok := c.entries[n.ekey]
			if !ok || e.node != el {
				t.Fatalf("dangling entry LRU node for %+v (present=%v)", n.ekey, ok)
			}
		} else {
			rec, ok := c.index[n.ikey]
			if !ok || rec.node != el {
				t.Fatalf("dangling record LRU node for %+v (present=%v)", n.ikey, ok)
			}
		}
	}
}

// orphanEntry drives the cache into the orphaned-entry state: footprint
// k's covering record is evicted (a Hit put the entry ahead of its
// record in the LRU, so the record goes first under pressure) while its
// entry stays behind, unreachable until the covering is re-admitted.
// evictor must be sized so that evicting only the record makes room.
func orphanEntry(t *testing.T, c *Cache, k Key, cells []cellid.ID, res core.Result, evictor Key, evictorCells []cellid.ID, evictorRes core.Result) {
	t.Helper()
	gen := c.Generation()
	if _, _, _, out := c.Lookup(k, gen); out != Miss {
		t.Fatal("footprint unexpectedly warm")
	}
	c.Store(k, cells, 0, res, gen)
	if _, _, _, out := c.Lookup(k, gen); out != Hit {
		t.Fatal("footprint not admitted")
	}
	// Hotter evictor: its admission must displace k's record (LRU back)
	// but stop before k's entry.
	for i := 0; i < 3; i++ {
		c.Lookup(evictor, gen)
	}
	c.Store(evictor, evictorCells, 0, evictorRes, gen)
	s := c.Stats()
	if s.Evictions != 1 || s.Coverings != 1 || s.Entries != 2 {
		t.Fatalf("orphan setup did not evict exactly the covering record: %+v", s)
	}
	assertLRUConsistent(t, c)
}

// TestReadmitOverOrphanedEntry pins the regression where Store's
// new-admission path overwrote an orphaned entry at the same entryKey
// (same covering token, reached via a different query geometry) without
// unlinking the old entry's LRU node or reclaiming its bytes. The
// dangling node later made eviction dereference a nil *entry and panic
// in the query path.
func TestReadmitOverOrphanedEntry(t *testing.T) {
	const aggs = "c"
	kA := Key{Geom: 0x1111, Level: 14, Bucket: 0, Aggs: aggs}
	cellsA := testCells(1, 8)
	resA := core.Result{Count: 101, Values: []float64{1.5}}
	entryA := int64(entryOverhead + 8 + len(aggs))
	recA := int64(recordOverhead + 8*8)

	// The evictor carries a deliberately fat result so that dropping its
	// stale entry later frees enough room for a no-eviction re-admission.
	kB := Key{Geom: 0x3333, Level: 14, Bucket: 0, Aggs: aggs}
	cellsB := testCells(2, 8)
	resB := core.Result{Count: 500, Values: make([]float64, 100)}
	entryB := int64(entryOverhead + 8*100 + len(aggs))
	recB := int64(recordOverhead + 8*8)

	// Budget: storing B forces out exactly A's record
	// (A+B > budget >= A+B-recA), everything after fits eviction-free.
	budget := entryA + recA + entryB + recB - recA + 100
	c := mustCache(t, budget, 0)
	orphanEntry(t, c, kA, cellsA, resA, kB, cellsB, resB)
	gen0 := c.Generation()

	// Data moves on; B's fat entry goes stale and is reclaimed on read.
	c.Invalidate()
	gen1 := c.Generation()
	if _, cells, _, out := c.Lookup(kB, gen1); out != MissCovered || len(cells) != len(cellsB) {
		t.Fatalf("stale lookup: got %v with %d cells", out, len(cells))
	}

	// A different geometry normalizing to A's covering re-admits the same
	// covering token while A's orphaned entry still occupies its entryKey.
	// There is room now, so no eviction runs: the broken path silently
	// overwrote the orphan here.
	kA2 := Key{Geom: 0x2222, Level: 14, Bucket: 0, Aggs: aggs}
	if _, _, _, out := c.Lookup(kA2, gen1); out != Miss {
		t.Fatal("fresh geometry unexpectedly warm")
	}
	c.Store(kA2, cellsA, 0, resA, gen1)
	if _, _, _, out := c.Lookup(kA2, gen1); out != Hit {
		t.Fatal("re-admission over the orphaned entry failed")
	}
	assertLRUConsistent(t, c)
	if s := c.Stats(); s.Bytes != entryA+recA+recB {
		t.Fatalf("bytes %d after re-admission, want %d (orphan not reclaimed)", s.Bytes, entryA+recA+recB)
	}

	// Byte pressure from a much hotter footprint drains the whole cache:
	// with the orphan's node dangling this dereferenced nil and panicked.
	kC := Key{Geom: 0x4444, Level: 14, Bucket: 0, Aggs: aggs}
	cellsC := testCells(5, 130)
	for i := 0; i < 10; i++ {
		c.Lookup(kC, gen1)
	}
	c.Store(kC, cellsC, 0, core.Result{Count: 9, Values: []float64{9}}, gen1)
	if _, _, _, out := c.Lookup(kC, gen1); out != Hit {
		t.Fatal("hot footprint not admitted under full drain")
	}
	assertLRUConsistent(t, c)
	s := c.Stats()
	if s.Entries != 1 || s.Coverings != 1 {
		t.Fatalf("drain left residue: %+v", s)
	}
	if want := int64(recordOverhead + 8*130 + entryOverhead + 8 + len(aggs)); s.Bytes != want {
		t.Fatalf("bytes %d after drain, want %d", s.Bytes, want)
	}
	_ = gen0
}

// TestReadmitHotFootprintAfterRecordEviction pins the eviction-tie
// regression: a re-admitted hot footprint always ties with its own
// orphaned entry sitting at the LRU back (same footprint hash), so under
// byte pressure the hottest footprint could never come back — a
// permanent rejectedColder livelock. A victim carrying the candidate's
// own footprint hash is being replaced, not displaced, and must be
// evictable.
func TestReadmitHotFootprintAfterRecordEviction(t *testing.T) {
	const aggs = "c"
	kA := Key{Geom: 0xAAAA, Level: 14, Bucket: 0, Aggs: aggs}
	cellsA := testCells(1, 8)
	resA := core.Result{Count: 101, Values: []float64{1.5}}
	kB := Key{Geom: 0xBBBB, Level: 14, Bucket: 0, Aggs: aggs}

	// One footprint is entry+record; the budget holds one and a half.
	c := mustCache(t, 700, 0)
	orphanEntry(t, c, kA, cellsA, resA, kB, testCells(2, 8), core.Result{Count: 7, Values: []float64{7}})
	gen := c.Generation()

	// A keeps being asked for — the hottest footprint in the workload —
	// and must win re-admission over both its own orphan and colder B.
	for i := 0; i < 3; i++ {
		if _, _, _, out := c.Lookup(kA, gen); out != Miss {
			t.Fatalf("lookup %d: want Miss while covering is gone", i)
		}
	}
	c.Store(kA, cellsA, 0, resA, gen)
	if _, _, _, out := c.Lookup(kA, gen); out != Hit {
		t.Fatal("hot footprint wedged out by its own orphaned entry")
	}
	if s := c.Stats(); s.RejectedColder != 0 {
		t.Fatalf("re-admission counted as rejected-colder: %+v", s)
	}
	assertLRUConsistent(t, c)
}
