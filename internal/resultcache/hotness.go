package resultcache

import (
	"sync"
	"sync/atomic"
)

// hotShards is the number of hotness stripes. Footprint hashes spread
// uniformly, so two goroutines recording different footprints almost
// never touch the same lock — the same striping trade-off as the query
// statistics the per-block cache keeps (aggtrie.ShardedStats). Power of
// two, required by the mask below.
const hotShards = 16

// hotShardCap bounds one stripe's key map. When an insert would exceed
// it, the stripe ages first (halving drops cold keys); a key that still
// does not fit is discarded and counted, so adversarial query streams
// cannot grow the tracker without bound — the node-cap policy of
// aggtrie.Stats applied to footprint hashes.
const hotShardCap = 4096

// defaultAgeWindow is how many recorded touches (across all stripes)
// separate aging passes. Each pass halves every count and drops zeros,
// so a footprint's score reflects *recent* repetition: a region that was
// hot yesterday but has gone cold decays back below the admission
// threshold instead of pinning cache space forever.
const defaultAgeWindow = 1 << 17

// hotness tracks per-footprint hit scores: how often each candidate
// query footprint has been seen recently. It is the admission side of
// the result cache — entries are only admitted once their footprint's
// recent score clears the threshold — and follows the shape of the
// existing ShardedStats machinery: cache-line-padded lock stripes picked
// by a Fibonacci hash, per-stripe capacity bounds, and cheap global
// counters.
type hotness struct {
	shards [hotShards]hotShard
	// ops counts touches since the last aging pass; crossing ageWindow
	// arms a per-stripe halving.
	ops       atomic.Uint64
	ageWindow uint64
	dropped   atomic.Uint64
}

// hotShard pads each lock+map pair so stripe locks do not false-share.
type hotShard struct {
	mu     sync.Mutex
	counts map[uint64]uint32
	_      [64 - 16]byte
}

func newHotness() *hotness {
	h := &hotness{ageWindow: defaultAgeWindow}
	for i := range h.shards {
		h.shards[i].counts = make(map[uint64]uint32)
	}
	return h
}

// shardFor picks the stripe of a footprint hash. The multiplier spreads
// structured inputs; the high bits select the stripe (the same scheme
// ShardedStats uses for cell ids).
func (h *hotness) shardFor(key uint64) *hotShard {
	x := key * 0x9e3779b97f4a7c15
	return &h.shards[(x>>48)&(hotShards-1)]
}

// touch records one sighting of the footprint and returns its updated
// recent score. New footprints that do not fit under the stripe cap even
// after aging are dropped (score 0).
func (h *hotness) touch(key uint64) uint32 {
	sh := h.shardFor(key)
	sh.mu.Lock()
	c, ok := sh.counts[key]
	if !ok && len(sh.counts) >= hotShardCap {
		sh.ageLocked()
		if len(sh.counts) >= hotShardCap {
			sh.mu.Unlock()
			h.dropped.Add(1)
			return 0
		}
	}
	c++
	sh.counts[key] = c
	sh.mu.Unlock()

	if h.ops.Add(1)%h.ageWindow == 0 {
		h.age()
	}
	return c
}

// estimate returns the footprint's current recent score without
// recording a sighting.
func (h *hotness) estimate(key uint64) uint32 {
	sh := h.shardFor(key)
	sh.mu.Lock()
	c := sh.counts[key]
	sh.mu.Unlock()
	return c
}

// age halves every stripe's counts, dropping keys that reach zero.
func (h *hotness) age() {
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		sh.ageLocked()
		sh.mu.Unlock()
	}
}

func (sh *hotShard) ageLocked() {
	for k, c := range sh.counts {
		c >>= 1
		if c == 0 {
			delete(sh.counts, k)
		} else {
			sh.counts[k] = c
		}
	}
}

// tracked returns how many footprints currently hold a non-zero score.
func (h *hotness) tracked() int {
	total := 0
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		total += len(sh.counts)
		sh.mu.Unlock()
	}
	return total
}
