package phtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/core"
	"geoblocks/internal/geom"
)

func TestMortonRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		x := rng.Uint32() & maxCoordValue
		y := rng.Uint32() & maxCoordValue
		code := morton(x, y)
		if gx := compactBits(code); gx != x {
			t.Fatalf("x round trip: %d -> %d", x, gx)
		}
		if gy := compactBits(code >> 1); gy != y {
			t.Fatalf("y round trip: %d -> %d", y, gy)
		}
	}
}

func TestMortonOrderIsHierarchical(t *testing.T) {
	// Points sharing high coordinate bits share Morton prefixes.
	a := morton(0b1010<<10, 0b0110<<10)
	b := morton(0b1010<<10|3, 0b0110<<10|1)
	cd := commonDepth(a, b)
	if cd < 10 {
		t.Fatalf("common depth = %d, want >= 10", cd)
	}
}

func TestStepAndPrefix(t *testing.T) {
	code := morton(1<<30, 0) // top x bit set
	if got := stepAt(code, 0); got != 1 {
		t.Fatalf("stepAt(0) = %d, want 1 (x bit)", got)
	}
	code = morton(0, 1<<30)
	if got := stepAt(code, 0); got != 2 {
		t.Fatalf("stepAt(0) = %d, want 2 (y bit)", got)
	}
	if prefixAt(code, 0) != 0 {
		t.Fatal("prefixAt depth 0 must be 0")
	}
	if prefixAt(code, bitsPerDim) != code {
		t.Fatal("prefixAt full depth must be identity")
	}
}

type fixture struct {
	dom  cellid.Domain
	tbl  *column.Table
	pts  []geom.Point
	tree *Tree
}

func newFixture(t testing.TB, n int, seed int64) *fixture {
	t.Helper()
	dom := cellid.MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)})
	schema := column.NewSchema("v", "w")
	rng := rand.New(rand.NewSource(seed))
	tbl := column.NewTable(schema)
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		if i%4 == 0 {
			pts[i] = geom.Pt(35+rng.NormFloat64()*6, 65+rng.NormFloat64()*6)
		} else {
			pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		tbl.AppendRow(uint64(dom.FromPoint(pts[i])), rng.Float64()*10, rng.NormFloat64())
	}
	// Note: table not sorted — the PH-tree does not require sorted data.
	tree := New(tbl, dom.Bound(), func(row int) geom.Point { return pts[row] })
	return &fixture{dom: dom, tbl: tbl, pts: pts, tree: tree}
}

func (f *fixture) bruteCount(r geom.Rect) uint64 {
	// Count in quantized space to match the tree's integer semantics.
	w := f.tree.window(r)
	var n uint64
	for _, p := range f.pts {
		x, y := f.tree.quantize(p)
		if w.containsPoint(x, y) {
			n++
		}
	}
	return n
}

func TestCountWindowMatchesBruteForce(t *testing.T) {
	f := newFixture(t, 20000, 2)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		x0 := rng.Float64() * 90
		y0 := rng.Float64() * 90
		r := geom.Rect{
			Min: geom.Pt(x0, y0),
			Max: geom.Pt(x0+rng.Float64()*(100-x0), y0+rng.Float64()*(100-y0)),
		}
		got := f.tree.CountWindow(r)
		want := f.bruteCount(r)
		if got != want {
			t.Fatalf("window %v: count = %d, want %d", r, got, want)
		}
	}
}

func TestAggregateWindowMatchesBruteForce(t *testing.T) {
	f := newFixture(t, 10000, 4)
	r := geom.Rect{Min: geom.Pt(20, 30), Max: geom.Pt(70, 80)}
	sp := []core.AggSpec{
		{Func: core.AggCount},
		{Col: 0, Func: core.AggSum},
		{Col: 0, Func: core.AggMax},
		{Col: 1, Func: core.AggMin},
	}
	got := f.tree.AggregateWindow(r, sp)

	w := f.tree.window(r)
	count := uint64(0)
	sum := 0.0
	maxV := math.Inf(-1)
	minW := math.Inf(1)
	for i, p := range f.pts {
		x, y := f.tree.quantize(p)
		if !w.containsPoint(x, y) {
			continue
		}
		count++
		sum += f.tbl.Cols[0][i]
		if f.tbl.Cols[0][i] > maxV {
			maxV = f.tbl.Cols[0][i]
		}
		if f.tbl.Cols[1][i] < minW {
			minW = f.tbl.Cols[1][i]
		}
	}
	if got.Count != count {
		t.Fatalf("count = %d, want %d", got.Count, count)
	}
	if math.Abs(got.Values[1]-sum) > 1e-9*math.Max(1, math.Abs(sum)) {
		t.Fatalf("sum = %g, want %g", got.Values[1], sum)
	}
	if got.Values[2] != maxV || got.Values[3] != minW {
		t.Fatalf("min/max differ: %g/%g vs %g/%g", got.Values[2], got.Values[3], maxV, minW)
	}
}

func TestQuickWindowCounts(t *testing.T) {
	f := newFixture(t, 3000, 5)
	check := func(x0f, y0f, wf, hf uint16) bool {
		x0 := float64(x0f) / 65535 * 100
		y0 := float64(y0f) / 65535 * 100
		w := float64(wf) / 65535 * (100 - x0)
		h := float64(hf) / 65535 * (100 - y0)
		r := geom.Rect{Min: geom.Pt(x0, y0), Max: geom.Pt(x0+w, y0+h)}
		return f.tree.CountWindow(r) == f.bruteCount(r)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFullDomainWindow(t *testing.T) {
	f := newFixture(t, 5000, 6)
	r := f.dom.Bound()
	if got := f.tree.CountWindow(r); got != uint64(f.tree.Len()) {
		t.Fatalf("full-domain count = %d, want %d", got, f.tree.Len())
	}
}

func TestEmptyWindow(t *testing.T) {
	f := newFixture(t, 5000, 7)
	r := geom.Rect{Min: geom.Pt(200, 200), Max: geom.Pt(210, 210)}
	// Outside the domain: quantization clamps to the border, so use a
	// degenerate in-domain strip guaranteed empty instead.
	if got := f.tree.CountWindow(r); got > uint64(f.tree.Len()) {
		t.Fatalf("clamped window count = %d out of range", got)
	}
}

func TestDuplicatePointsAllStored(t *testing.T) {
	dom := cellid.MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10, 10)})
	schema := column.NewSchema("v")
	tbl := column.NewTable(schema)
	p := geom.Pt(5, 5)
	const dup = 50
	for i := 0; i < dup; i++ {
		tbl.AppendRow(uint64(dom.FromPoint(p)), float64(i))
	}
	tree := New(tbl, dom.Bound(), func(int) geom.Point { return p })
	if tree.Len() != dup {
		t.Fatalf("len = %d", tree.Len())
	}
	r := geom.Rect{Min: geom.Pt(4, 4), Max: geom.Pt(6, 6)}
	if got := tree.CountWindow(r); got != dup {
		t.Fatalf("count = %d, want %d", got, dup)
	}
}

func TestPrefixSharingCompressesClusters(t *testing.T) {
	// A tight cluster should produce far fewer nodes than points, thanks
	// to path compression skipping the long shared prefix.
	dom := cellid.MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)})
	schema := column.NewSchema("v")
	tbl := column.NewTable(schema)
	rng := rand.New(rand.NewSource(8))
	const n = 2000
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		pts[i] = geom.Pt(50+rng.Float64()*0.01, 50+rng.Float64()*0.01)
		tbl.AppendRow(uint64(dom.FromPoint(pts[i])), 1)
	}
	tree := New(tbl, dom.Bound(), func(row int) geom.Point { return pts[row] })
	if tree.NumNodes() > n {
		t.Fatalf("nodes %d exceed points %d — compression broken", tree.NumNodes(), n)
	}
	if tree.SizeBytes() <= 0 {
		t.Fatal("size must be positive")
	}
}

func TestWindowBelowPointResolution(t *testing.T) {
	f := newFixture(t, 2000, 9)
	// A window so small it quantizes to a single integer cell: counts
	// points exactly at that cell.
	r := geom.Rect{Min: geom.Pt(50, 50), Max: geom.Pt(50, 50)}
	got := f.tree.CountWindow(r)
	want := f.bruteCount(r)
	if got != want {
		t.Fatalf("degenerate window: %d vs %d", got, want)
	}
}
