// Package phtree implements a two-dimensional PH-tree (Zäschke et al.,
// SIGMOD 2014), the multidimensional point-index baseline of the paper's
// evaluation (Sec. 4.1). Coordinates are quantized to 32-bit integers and
// interleaved into a 64-bit Morton code; the tree is a 4-ary hypercube trie
// over that code with PATRICIA-style prefix sharing (path compression), the
// property the paper credits for the PH-tree's space efficiency.
//
// As in the paper, the PH-tree only supports rectangular window queries;
// polygonal queries are answered over the polygon's interior rectangle,
// and the integer quantization introduces the small inaccuracy the paper
// observes in Fig. 15.
package phtree

import (
	"geoblocks/internal/baseline"
	"geoblocks/internal/column"
	"geoblocks/internal/core"
	"geoblocks/internal/geom"
)

// bitsPerDim is the coordinate resolution. 31 bits keep the Morton code in
// 62 bits and the per-dimension ranges in int64-safe territory.
const bitsPerDim = 31

// maxCoordValue is the largest quantized coordinate.
const maxCoordValue = 1<<bitsPerDim - 1

// entry is one indexed point.
type entry struct {
	code uint64 // Morton code
	row  uint32 // base-data row
}

// leafCapacity bounds bucket size before a split. Small buckets mirror the
// PH-tree's dense nodes while keeping scan costs realistic.
const leafCapacity = 8

// node is a trie node covering all points sharing code's top `depth`
// 2-bit steps. Internal nodes fan out over the next step's quadrant;
// leaves hold a bucket of entries. Path compression: a node's depth can be
// more than one step below its parent's.
type node struct {
	prefix uint64 // Morton code prefix, low bits zero
	depth  uint8  // number of 2-bit steps fixed in prefix (0..bitsPerDim)
	leaf   bool
	// children for internal nodes (quadrant order: bit pattern of the
	// step at this depth).
	children [4]*node
	// entries for leaves.
	entries []entry
}

// Tree is the PH-tree index over a base table.
type Tree struct {
	root    *node
	bound   geom.Rect
	scaleX  float64
	scaleY  float64
	table   *column.Table
	numPts  int
	numNode int
}

// New builds a PH-tree over all rows of the table, using the provided
// point accessor (the experiments reconstruct locations from leaf-cell
// centres so that every baseline indexes identical data).
func New(t *column.Table, bound geom.Rect, pointAt func(row int) geom.Point) *Tree {
	tr := &Tree{
		bound:  bound,
		scaleX: float64(maxCoordValue) / bound.Width(),
		scaleY: float64(maxCoordValue) / bound.Height(),
		table:  t,
	}
	for i := 0; i < t.NumRows(); i++ {
		tr.insert(pointAt(i), uint32(i))
	}
	return tr
}

// quantize maps a point to integer grid coordinates, clamping to the
// domain — the integer-space transformation the paper applies.
func (t *Tree) quantize(p geom.Point) (uint32, uint32) {
	x := (p.X - t.bound.Min.X) * t.scaleX
	y := (p.Y - t.bound.Min.Y) * t.scaleY
	return clamp31(x), clamp31(y)
}

func clamp31(f float64) uint32 {
	if f < 0 {
		return 0
	}
	if f > maxCoordValue {
		return maxCoordValue
	}
	return uint32(f)
}

// morton interleaves x (even bits) and y (odd bits).
func morton(x, y uint32) uint64 {
	return spreadBits(uint64(x)) | spreadBits(uint64(y))<<1
}

// spreadBits spaces the low 31 bits of v one position apart.
func spreadBits(v uint64) uint64 {
	v &= 0x7fffffff
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f0f0f0f0f
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// stepAt extracts the 2-bit quadrant of code at the given step depth
// (step 0 = most significant).
func stepAt(code uint64, depth uint8) int {
	shift := uint(2 * (bitsPerDim - 1 - int(depth)))
	return int(code>>shift) & 3
}

// prefixAt truncates code to its top `depth` steps.
func prefixAt(code uint64, depth uint8) uint64 {
	if depth == 0 {
		return 0
	}
	shift := uint(2 * (bitsPerDim - int(depth)))
	return code >> shift << shift
}

// commonDepth returns the number of leading 2-bit steps codes a and b
// share.
func commonDepth(a, b uint64) uint8 {
	for d := uint8(0); d < bitsPerDim; d++ {
		if stepAt(a, d) != stepAt(b, d) {
			return d
		}
	}
	return bitsPerDim
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.numPts }

// NumNodes returns the number of trie nodes.
func (t *Tree) NumNodes() int { return t.numNode }

func (t *Tree) insert(p geom.Point, row uint32) {
	x, y := t.quantize(p)
	e := entry{code: morton(x, y), row: row}
	t.numPts++
	if t.root == nil {
		t.root = &node{leaf: true, entries: []entry{e}}
		t.numNode = 1
		return
	}
	t.root = t.insertRec(t.root, e)
}

// insertRec inserts e below n, returning the (possibly new) subtree root.
func (t *Tree) insertRec(n *node, e entry) *node {
	if cd := commonDepth(n.prefix, e.code); cd < n.depth {
		// The entry diverges above this node: interpose a new internal
		// node at the divergence depth — the PATRICIA split that gives
		// the PH-tree its prefix sharing.
		parent := &node{prefix: prefixAt(e.code, cd), depth: cd}
		parent.children[stepAt(n.prefix, cd)] = n
		leafN := &node{
			prefix:  prefixAt(e.code, cd+1),
			depth:   cd + 1,
			leaf:    true,
			entries: []entry{e},
		}
		parent.children[stepAt(e.code, cd)] = leafN
		t.numNode += 2
		return parent
	}
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > leafCapacity && n.depth < bitsPerDim {
			t.splitLeaf(n)
		}
		return n
	}
	q := stepAt(e.code, n.depth)
	if n.children[q] == nil {
		n.children[q] = &node{
			prefix:  prefixAt(e.code, n.depth+1),
			depth:   n.depth + 1,
			leaf:    true,
			entries: []entry{e},
		}
		t.numNode++
		return n
	}
	n.children[q] = t.insertRec(n.children[q], e)
	return n
}

// splitLeaf converts an over-full leaf into an internal node. If all
// entries share a longer prefix the leaf instead deepens (path
// compression keeps single-child chains implicit).
func (t *Tree) splitLeaf(n *node) {
	// Find the longest prefix common to the whole bucket.
	cd := uint8(bitsPerDim)
	for _, e := range n.entries[1:] {
		if d := commonDepth(n.entries[0].code, e.code); d < cd {
			cd = d
		}
	}
	if cd >= bitsPerDim {
		// All entries are the same point: keep as an (over-full) leaf.
		return
	}
	if cd < n.depth {
		cd = n.depth
	}
	entries := n.entries
	n.leaf = false
	n.entries = nil
	n.prefix = prefixAt(entries[0].code, cd)
	n.depth = cd
	for _, e := range entries {
		q := stepAt(e.code, cd)
		if n.children[q] == nil {
			n.children[q] = &node{
				prefix: prefixAt(e.code, cd+1),
				depth:  cd + 1,
				leaf:   true,
			}
			t.numNode++
		}
		n.children[q].entries = append(n.children[q].entries, e)
	}
	// Recursively split children that are still over-full (all entries
	// may have landed in one quadrant with a longer shared prefix).
	for _, c := range n.children {
		if c != nil && len(c.entries) > leafCapacity && c.depth < bitsPerDim {
			t.splitLeaf(c)
		}
	}
}

// nodeRanges returns the inclusive coordinate ranges covered by a node's
// prefix. Because each fixed step pins one x bit and one y bit, a node's
// region is always a rectangle in quantized space.
func nodeRanges(prefix uint64, depth uint8) (xlo, xhi, ylo, yhi uint32) {
	xbits := compactBits(prefix)
	ybits := compactBits(prefix >> 1)
	free := uint(bitsPerDim - int(depth))
	xlo = xbits
	ylo = ybits
	xhi = xbits | uint32(1<<free-1)
	yhi = ybits | uint32(1<<free-1)
	return
}

// compactBits inverts spreadBits: gathers the even-position bits of v.
func compactBits(v uint64) uint32 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0f0f0f0f0f0f0f0f
	v = (v | v>>4) & 0x00ff00ff00ff00ff
	v = (v | v>>8) & 0x0000ffff0000ffff
	v = (v | v>>16) & 0x00000000ffffffff
	return uint32(v)
}

// window is a query rectangle in quantized coordinates.
type window struct {
	xlo, xhi, ylo, yhi uint32
}

func (w window) intersects(xlo, xhi, ylo, yhi uint32) bool {
	return w.xlo <= xhi && xlo <= w.xhi && w.ylo <= yhi && ylo <= w.yhi
}

func (w window) containsRange(xlo, xhi, ylo, yhi uint32) bool {
	return xlo >= w.xlo && xhi <= w.xhi && ylo >= w.ylo && yhi <= w.yhi
}

func (w window) containsPoint(x, y uint32) bool {
	return x >= w.xlo && x <= w.xhi && y >= w.ylo && y <= w.yhi
}

// AggregateWindow aggregates all points inside the rectangle r (closed),
// visiting only trie branches whose region intersects the window.
func (t *Tree) AggregateWindow(r geom.Rect, specs []core.AggSpec) core.Result {
	acc := baseline.NewRowAccumulator(specs)
	w := t.window(r)
	t.walkWindow(t.root, w, func(e entry, full bool) {
		if full || w.containsPoint(compactBits(e.code), compactBits(e.code>>1)) {
			acc.AddRow(t.table, int(e.row))
		}
	})
	return acc.Result()
}

// CountWindow counts points inside the rectangle.
func (t *Tree) CountWindow(r geom.Rect) uint64 {
	var n uint64
	w := t.window(r)
	t.walkWindow(t.root, w, func(e entry, full bool) {
		if full || w.containsPoint(compactBits(e.code), compactBits(e.code>>1)) {
			n++
		}
	})
	return n
}

func (t *Tree) window(r geom.Rect) window {
	xlo, ylo := t.quantize(r.Min)
	xhi, yhi := t.quantize(r.Max)
	return window{xlo: xlo, xhi: xhi, ylo: ylo, yhi: yhi}
}

// walkWindow visits every entry in branches intersecting w. full=true
// marks entries from branches entirely inside the window, which need no
// per-point test.
func (t *Tree) walkWindow(n *node, w window, emit func(e entry, full bool)) {
	if n == nil {
		return
	}
	xlo, xhi, ylo, yhi := nodeRanges(n.prefix, n.depth)
	if !w.intersects(xlo, xhi, ylo, yhi) {
		return
	}
	full := w.containsRange(xlo, xhi, ylo, yhi)
	if n.leaf {
		for _, e := range n.entries {
			emit(e, full)
		}
		return
	}
	for _, c := range n.children {
		if c == nil {
			continue
		}
		if full {
			t.emitAll(c, emit)
		} else {
			t.walkWindow(c, w, emit)
		}
	}
}

func (t *Tree) emitAll(n *node, emit func(e entry, full bool)) {
	if n.leaf {
		for _, e := range n.entries {
			emit(e, true)
		}
		return
	}
	for _, c := range n.children {
		if c != nil {
			t.emitAll(c, emit)
		}
	}
}

// SizeBytes returns the index overhead: per node fixed size (prefix,
// depth, child pointers, slice header) plus 12 bytes per entry.
func (t *Tree) SizeBytes() int {
	size := 0
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		size += 8 + 1 + 4*8 + 24 // prefix + depth + children + entries header
		size += 12 * cap(n.entries)
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return size
}

// Name identifies the baseline in experiment output.
func (t *Tree) Name() string { return "PHTree" }
