package geoblocks_test

// Pyramid / query-planner suite: the exact-vs-approx bound-respecting
// equivalence tests of the multi-resolution refactor. The planner's
// contract is property-tested against brute force over the raw points:
// for every approximate answer with reported guaranteed bound e,
//
//	count(poly) <= approx.Count <= count(dilate(poly, e))
//
// (and the analogue for SUM over a non-negative column), across
// randomized datasets, sharded and unsharded stores, cold and warmed
// caches, single and batch forms. MaxError = 0 must be bit-identical to
// the exact path.

import (
	"math"
	"math/rand"
	"testing"

	"geoblocks"
	"geoblocks/internal/baseline"
	"geoblocks/internal/cellid"
	"geoblocks/internal/geom"
	"geoblocks/internal/store"
	"geoblocks/internal/workload"
)

// pyramidTestData is one randomized dataset: raw points (all strictly
// inside testBound, so extraction drops nothing) plus two value columns —
// "val" non-negative (SUM envelope testable), "signed" mixed.
type pyramidTestData struct {
	pts  []geoblocks.Point
	cols [][]float64
}

func genPyramidData(n int, seed int64) pyramidTestData {
	rng := rand.New(rand.NewSource(seed))
	d := pyramidTestData{
		pts:  make([]geoblocks.Point, n),
		cols: [][]float64{make([]float64, n), make([]float64, n)},
	}
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			d.pts[i] = geoblocks.Pt(rng.Float64()*100, rng.Float64()*100)
		} else {
			// Clustered mass so coarse cells hold real weight.
			x := 30 + rng.NormFloat64()*12
			y := 60 + rng.NormFloat64()*10
			d.pts[i] = geoblocks.Pt(clamp(x, 0.001, 99.999), clamp(y, 0.001, 99.999))
		}
		d.cols[0][i] = rng.Float64() * 10
		d.cols[1][i] = rng.Float64()*10 - 5
	}
	return d
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// bruteEnvelope computes the exact in-polygon count/sum and the dilated
// count/sum over the raw points — the two ends of the planner's
// guarantee.
func bruteEnvelope(d pyramidTestData, poly *geoblocks.Polygon, margin float64) (loCount, hiCount uint64, loSum, hiSum float64) {
	for i, p := range d.pts {
		dist := baseline.DistanceToPolygon(p, poly)
		if dist == 0 {
			loCount++
			loSum += d.cols[0][i]
		}
		if dist <= margin {
			hiCount++
			hiSum += d.cols[0][i]
		}
	}
	return
}

// checkEnvelope asserts one result against the brute-force guarantee.
func checkEnvelope(t *testing.T, d pyramidTestData, poly *geoblocks.Polygon, res geoblocks.Result, label string) {
	t.Helper()
	// Tiny relative slack absorbs float rounding in the distance
	// computation; the geometric guarantee itself is not approximate.
	margin := res.ErrorBound*(1+1e-9) + 1e-12
	loC, hiC, loS, hiS := bruteEnvelope(d, poly, margin)
	if res.Count < loC || res.Count > hiC {
		t.Fatalf("%s: count %d outside guaranteed envelope [%d, %d] (bound %g, level %d)",
			label, res.Count, loC, hiC, res.ErrorBound, res.Level)
	}
	sum := res.Values[1]
	const sumSlack = 1e-6
	if sum < loS-sumSlack || sum > hiS+sumSlack {
		t.Fatalf("%s: sum %g outside guaranteed envelope [%g, %g] (bound %g, level %d)",
			label, sum, loS, hiS, res.ErrorBound, res.Level)
	}
}

func sameResult(a, b geoblocks.Result) bool {
	if a.Count != b.Count || len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if math.Float64bits(a.Values[i]) != math.Float64bits(b.Values[i]) {
			return false
		}
	}
	return true
}

// equivalentResults compares two answers of the same query under the
// cache-equivalence contract: COUNT/MIN/MAX bit-identical, SUM/AVG equal
// up to the floating-point reassociation a cache hit's pre-combined
// records introduce (DESIGN.md Sec. 6).
func equivalentResults(a, b geoblocks.Result, reqs []geoblocks.AggRequest) bool {
	if a.Count != b.Count || len(a.Values) != len(b.Values) || len(a.Values) != len(reqs) {
		return false
	}
	for i := range a.Values {
		x, y := a.Values[i], b.Values[i]
		if sumLike[i] {
			diff := math.Abs(x - y)
			scale := math.Max(math.Abs(x), math.Abs(y))
			if diff > 1e-9*math.Max(scale, 1) {
				return false
			}
		} else if math.Float64bits(x) != math.Float64bits(y) {
			return false
		}
	}
	return true
}

// sumLike marks which of the suite's aggregate requests are SUM/AVG
// (reassociation-tolerant); positions align with the reqs slice used by
// TestPyramidBoundGuarantee.
var sumLike = []bool{false, true, false, false}

// testPolys builds a small mixed workload over testBound: tessellation
// cells plus approximately circular regions of different scales.
func testPolys(t *testing.T, seed int64) []*geoblocks.Polygon {
	t.Helper()
	polys := workload.Tessellation(testBound, 4, 3, seed)[:6]
	for _, rp := range []struct {
		cx, cy, r float64
		n         int
	}{
		{30, 60, 18, 12},
		{70, 30, 7, 8},
		{50, 50, 45, 16},
	} {
		polys = append(polys, geoblocks.RegularPolygon(geoblocks.Pt(rp.cx, rp.cy), rp.r, rp.n))
	}
	return polys
}

// TestPyramidBoundGuarantee is the exact-vs-approx equivalence suite over
// the sharded store: randomized datasets × shard levels × cache
// configurations × cold/warm passes × single/batch forms, each answer
// checked against the brute-force envelope of its own reported bound.
func TestPyramidBoundGuarantee(t *testing.T) {
	const blockLevel = 12
	schema := geoblocks.NewSchema("val", "signed")
	dom := cellid.MustDomain(testBound)
	maxErrs := []float64{
		0,
		dom.CellDiagonal(11),
		dom.CellDiagonal(9),
		dom.CellDiagonal(7) * 1.3,
		25,
		1e6, // far coarser than the coarsest pyramid level: clamps
	}
	reqs := []geoblocks.AggRequest{geoblocks.Count(), geoblocks.Sum("val"), geoblocks.Min("signed"), geoblocks.Max("signed")}

	for _, seed := range []int64{1, 7} {
		d := genPyramidData(6000, seed)
		polys := testPolys(t, seed+100)
		for _, cfg := range []struct {
			name string
			opts store.Options
		}{
			{"unsharded", store.Options{Level: blockLevel, PyramidLevels: 6}},
			{"sharded", store.Options{Level: blockLevel, ShardLevel: 2, PyramidLevels: 6}},
			{"sharded-cached", store.Options{Level: blockLevel, ShardLevel: 2, PyramidLevels: 6, CacheThreshold: 0.25}},
		} {
			ds, err := store.Build("t", testBound, schema, d.pts, d.cols, cfg.opts)
			if err != nil {
				t.Fatalf("seed %d %s: Build: %v", seed, cfg.name, err)
			}
			cold := make(map[float64][]geoblocks.Result)
			for pass := 0; pass < 2; pass++ {
				if pass == 1 {
					// Second pass runs against warmed per-level caches:
					// cached answers must stay inside the same envelope
					// and bit-identical to the cold pass.
					ds.RefreshCaches()
				}
				for _, me := range maxErrs {
					opts := geoblocks.QueryOptions{MaxError: me}
					var single []geoblocks.Result
					for pi, poly := range polys {
						res, err := ds.QueryOpts(poly, opts, reqs...)
						if err != nil {
							t.Fatalf("seed %d %s pass %d: QueryOpts: %v", seed, cfg.name, pass, err)
						}
						if me == 0 {
							if res.Level != blockLevel {
								t.Fatalf("exact query answered at level %d", res.Level)
							}
							ex, err := ds.Query(poly, reqs...)
							if err != nil {
								t.Fatal(err)
							}
							if !sameResult(res, ex) {
								t.Fatalf("seed %d %s: MaxError=0 not bit-identical to Query: %+v vs %+v", seed, cfg.name, res, ex)
							}
						}
						if pass == 0 {
							checkEnvelope(t, d, poly, res, cfg.name)
						} else if !equivalentResults(res, cold[me][pi], reqs) {
							// COUNT/MIN/MAX must match the cold pass bit for
							// bit; cached SUM records re-associate additions
							// (DESIGN.md Sec. 6), so SUM/AVG get a relative
							// tolerance.
							t.Fatalf("seed %d %s max_error %g: warm-cache answer differs from cold for polygon %d: %+v vs %+v",
								seed, cfg.name, me, pi, res, cold[me][pi])
						}
						single = append(single, res)
					}
					if pass == 0 {
						cold[me] = single
					}
					batch, err := ds.QueryBatchOpts(polys, opts, reqs...)
					if err != nil {
						t.Fatalf("QueryBatchOpts: %v", err)
					}
					for i := range batch {
						if !sameResult(batch[i], single[i]) {
							t.Fatalf("seed %d %s max_error %g: batch result %d differs from single", seed, cfg.name, me, i)
						}
						if batch[i].Level != single[i].Level || batch[i].ErrorBound != single[i].ErrorBound {
							t.Fatalf("batch result %d level/bound differ from single", i)
						}
					}
				}
			}
		}
	}
}

// TestPyramidBoundGuaranteePublicBlock runs the envelope property on the
// public single-block API: QueryOpts / QueryRectOpts on a GeoBlock with a
// pyramid, cached and uncached, plus the MaxError=0 bit-identity.
func TestPyramidBoundGuaranteePublicBlock(t *testing.T) {
	const blockLevel = 12
	d := genPyramidData(5000, 3)
	schema := geoblocks.NewSchema("val", "signed")
	b, err := geoblocks.NewBuilder(testBound, schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddRows(d.pts, d.cols); err != nil {
		t.Fatal(err)
	}
	blk, err := b.Build(blockLevel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := blk.BuildPyramid(6); err != nil {
		t.Fatal(err)
	}
	dom := cellid.MustDomain(testBound)
	reqs := []geoblocks.AggRequest{geoblocks.Count(), geoblocks.Sum("val")}
	polys := testPolys(t, 11)

	for _, cached := range []bool{false, true} {
		if cached {
			if err := blk.EnableCache(0.25, 0); err != nil {
				t.Fatal(err)
			}
		}
		for _, me := range []float64{0, dom.CellDiagonal(10), dom.CellDiagonal(8), 40} {
			opts := geoblocks.QueryOptions{MaxError: me}
			for _, poly := range polys {
				res, err := blk.QueryOpts(poly, opts, reqs...)
				if err != nil {
					t.Fatal(err)
				}
				if me == 0 {
					ex, err := blk.Query(poly, reqs...)
					if err != nil {
						t.Fatal(err)
					}
					if !sameResult(res, ex) {
						t.Fatalf("MaxError=0 not bit-identical (cached=%v)", cached)
					}
				}
				checkEnvelope(t, d, poly, res, "public block")
				// The parallel kernel must respect the same envelope.
				pres, err := blk.QueryOpts(poly, geoblocks.QueryOptions{MaxError: me, Workers: 4}, reqs...)
				if err != nil {
					t.Fatal(err)
				}
				if pres.Count != res.Count || pres.Level != res.Level {
					t.Fatalf("parallel planned query count/level mismatch")
				}
			}
			// Rect form: the envelope for rectangles via their polygon.
			r := geoblocks.Rect{Min: geoblocks.Pt(20, 45), Max: geoblocks.Pt(55, 80)}
			res, err := blk.QueryRectOpts(r, opts, reqs...)
			if err != nil {
				t.Fatal(err)
			}
			checkEnvelope(t, d, r.Polygon(), res, "rect")
		}
	}
}

// TestPlannerLevelSelection pins the planner's level arithmetic.
func TestPlannerLevelSelection(t *testing.T) {
	const blockLevel = 10
	d := genPyramidData(2000, 5)
	schema := geoblocks.NewSchema("val", "signed")
	b, err := geoblocks.NewBuilder(testBound, schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddRows(d.pts, d.cols); err != nil {
		t.Fatal(err)
	}
	blk, err := b.Build(blockLevel, nil)
	if err != nil {
		t.Fatal(err)
	}
	dom := cellid.MustDomain(testBound)

	// Without a pyramid every error bound resolves to the base level.
	if got := blk.LevelFor(1e9); got != blockLevel {
		t.Fatalf("LevelFor without pyramid = %d, want %d", got, blockLevel)
	}
	if err := blk.BuildPyramid(4); err != nil {
		t.Fatal(err)
	}
	if got := blk.PyramidLevels(); len(got) != 4 || got[0] != 9 || got[3] != 6 {
		t.Fatalf("PyramidLevels = %v", got)
	}
	if blk.PyramidBytes() <= 0 {
		t.Fatal("PyramidBytes = 0 with a pyramid built")
	}
	cases := []struct {
		maxError float64
		want     int
	}{
		{0, blockLevel},                           // exact
		{dom.CellDiagonal(blockLevel) / 2, 10},    // tighter than base: base
		{dom.CellDiagonal(9), 9},                  // exactly one level coarser
		{dom.CellDiagonal(8) * 1.01, 8},           // between levels: coarser one
		{dom.CellDiagonal(6), 6},                  // coarsest pyramid level
		{1e12, 6},                                 // beyond the pyramid: clamps
		{dom.CellDiagonal(9) * 0.999, blockLevel}, // just under level 9's diagonal
	}
	for _, tc := range cases {
		if got := blk.LevelFor(tc.maxError); got != tc.want {
			t.Errorf("LevelFor(%g) = %d, want %d", tc.maxError, got, tc.want)
		}
	}

	// AtLevel resolves base and pyramid levels, and nothing else.
	if lb, ok := blk.AtLevel(blockLevel); !ok || lb != blk {
		t.Fatal("AtLevel(base) did not return the block itself")
	}
	if lb, ok := blk.AtLevel(7); !ok || lb.Level() != 7 {
		t.Fatal("AtLevel(7) missing")
	}
	if _, ok := blk.AtLevel(5); ok {
		t.Fatal("AtLevel(5) exists below the pyramid")
	}
	if _, ok := blk.AtLevel(blockLevel + 1); ok {
		t.Fatal("AtLevel above the base level exists")
	}

	// BuildPyramid clamps at level 0 and BuildPyramid(0) removes.
	if err := blk.BuildPyramid(99); err != nil {
		t.Fatal(err)
	}
	if got := blk.PyramidLevels(); len(got) != blockLevel || got[len(got)-1] != 0 {
		t.Fatalf("clamped pyramid levels = %v", got)
	}
	if err := blk.BuildPyramid(0); err != nil {
		t.Fatal(err)
	}
	if len(blk.PyramidLevels()) != 0 {
		t.Fatal("BuildPyramid(0) left a pyramid behind")
	}
}

// TestQueryOptionsValidation pins the rejection of malformed options at
// both API layers.
func TestQueryOptionsValidation(t *testing.T) {
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := (geoblocks.QueryOptions{MaxError: bad}).Validate(); err == nil {
			t.Errorf("Validate accepted MaxError %v", bad)
		}
	}
	if err := (geoblocks.QueryOptions{MaxError: 0.5, Workers: -3}).Validate(); err != nil {
		t.Errorf("Validate rejected negative workers (GOMAXPROCS convention): %v", err)
	}

	d := genPyramidData(500, 9)
	schema := geoblocks.NewSchema("val", "signed")
	ds, err := store.Build("t", testBound, schema, d.pts, d.cols, store.Options{Level: 8, PyramidLevels: 2})
	if err != nil {
		t.Fatal(err)
	}
	poly := geoblocks.RegularPolygon(geoblocks.Pt(50, 50), 10, 8)
	if _, err := ds.QueryOpts(poly, geoblocks.QueryOptions{MaxError: math.NaN()}, geoblocks.Count()); err == nil {
		t.Error("store QueryOpts accepted NaN MaxError")
	}
	if _, err := ds.QueryBatchOpts([]*geom.Polygon{poly}, geoblocks.QueryOptions{MaxError: -2}, geoblocks.Count()); err == nil {
		t.Error("store QueryBatchOpts accepted negative MaxError")
	}
}

// TestStoreWorkersEquivalence pins that the Workers option reaches the
// shard partials through the routed store path: COUNT/MIN/MAX must be
// bit-identical to the serial kernel at every planned level (SUM may
// re-associate, so it is excluded here; the envelope suite covers it).
func TestStoreWorkersEquivalence(t *testing.T) {
	d := genPyramidData(6000, 31)
	schema := geoblocks.NewSchema("val", "signed")
	ds, err := store.Build("t", testBound, schema, d.pts, d.cols,
		store.Options{Level: 12, ShardLevel: 1, PyramidLevels: 4})
	if err != nil {
		t.Fatal(err)
	}
	dom := cellid.MustDomain(testBound)
	reqs := []geoblocks.AggRequest{geoblocks.Count(), geoblocks.Min("signed"), geoblocks.Max("signed")}
	for _, me := range []float64{0, dom.CellDiagonal(10)} {
		for _, workers := range []int{-1, 4} {
			for _, poly := range testPolys(t, 33) {
				serial, err := ds.QueryOpts(poly, geoblocks.QueryOptions{MaxError: me}, reqs...)
				if err != nil {
					t.Fatal(err)
				}
				par, err := ds.QueryOpts(poly, geoblocks.QueryOptions{MaxError: me, Workers: workers}, reqs...)
				if err != nil {
					t.Fatal(err)
				}
				if !sameResult(par, serial) || par.Level != serial.Level {
					t.Fatalf("workers=%d max_error %g: %+v != serial %+v", workers, me, par, serial)
				}
			}
		}
	}
}

// TestPyramidCacheAndUpdate pins cache propagation across pyramid levels
// and the pyramid rebuild on Update.
func TestPyramidCacheAndUpdate(t *testing.T) {
	const blockLevel = 8
	d := genPyramidData(3000, 13)
	schema := geoblocks.NewSchema("val", "signed")
	b, err := geoblocks.NewBuilder(testBound, schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddRows(d.pts, d.cols); err != nil {
		t.Fatal(err)
	}
	blk, err := b.Build(blockLevel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := blk.EnableCache(0.5, 0); err != nil {
		t.Fatal(err)
	}
	if err := blk.BuildPyramid(3); err != nil {
		t.Fatal(err)
	}
	dom := cellid.MustDomain(testBound)
	poly := geoblocks.RegularPolygon(geoblocks.Pt(30, 60), 20, 10)
	coarse := geoblocks.QueryOptions{MaxError: dom.CellDiagonal(6)}

	before := blk.CacheMetrics().Probes
	if _, err := blk.QueryOpts(poly, coarse, geoblocks.Count()); err != nil {
		t.Fatal(err)
	}
	if blk.CacheMetrics().Probes == before {
		t.Fatal("approximate query did not probe the pyramid level's cache")
	}

	// Update must re-derive the pyramid so coarse answers see new tuples.
	exact0, err := blk.Query(poly, geoblocks.Count())
	if err != nil {
		t.Fatal(err)
	}
	coarse0, err := blk.QueryOpts(poly, coarse, geoblocks.Count())
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate existing in-polygon points: they are guaranteed to land in
	// aggregated cells (no rebuild) and inside both levels' coverings, so
	// both counts must grow by exactly the batch size.
	batch := &geoblocks.UpdateBatch{Cols: [][]float64{nil, nil}}
	for i, p := range d.pts {
		if len(batch.Points) == 200 {
			break
		}
		if poly.ContainsPoint(p) {
			batch.Points = append(batch.Points, p)
			batch.Cols[0] = append(batch.Cols[0], d.cols[0][i])
			batch.Cols[1] = append(batch.Cols[1], d.cols[1][i])
		}
	}
	n := len(batch.Points)
	if n == 0 {
		t.Fatal("no in-polygon points to update with")
	}
	if err := blk.Update(batch); err != nil {
		t.Fatal(err)
	}
	exact1, err := blk.Query(poly, geoblocks.Count())
	if err != nil {
		t.Fatal(err)
	}
	coarse1, err := blk.QueryOpts(poly, coarse, geoblocks.Count())
	if err != nil {
		t.Fatal(err)
	}
	if exact1.Count != exact0.Count+uint64(n) {
		t.Fatalf("exact count after update = %d, want %d", exact1.Count, exact0.Count+uint64(n))
	}
	if coarse1.Count != coarse0.Count+uint64(n) {
		t.Fatalf("coarse count after update = %d, want %d (stale pyramid?)", coarse1.Count, coarse0.Count+uint64(n))
	}

	// DisableCache reaches the pyramid levels too.
	blk.DisableCache()
	if blk.CacheSizeBytes() != 0 {
		t.Fatal("DisableCache left pyramid cache arenas")
	}
	probes := blk.CacheMetrics().Probes
	if _, err := blk.QueryOpts(poly, coarse, geoblocks.Count()); err != nil {
		t.Fatal(err)
	}
	if blk.CacheMetrics().Probes != probes {
		t.Fatal("query probed a disabled cache")
	}
}

// TestSnapshotRestoresPyramid pins that a snapshot round-trip re-derives
// the pyramid from the recorded configuration: planned levels, stats and
// approximate answers survive a restore bit-identically.
func TestSnapshotRestoresPyramid(t *testing.T) {
	d := genPyramidData(4000, 21)
	schema := geoblocks.NewSchema("val", "signed")
	ds, err := store.Build("pyr", testBound, schema, d.pts, d.cols,
		store.Options{Level: 11, ShardLevel: 1, PyramidLevels: 5, CacheThreshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir() + "/snap"
	if _, err := ds.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	rd, err := store.Open(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rd.Stats().PyramidLevels, 5; got != want {
		t.Fatalf("restored pyramid levels = %d, want %d", got, want)
	}
	if rd.Stats().PyramidBytes != ds.Stats().PyramidBytes {
		t.Fatalf("restored pyramid bytes = %d, want %d", rd.Stats().PyramidBytes, ds.Stats().PyramidBytes)
	}
	dom := cellid.MustDomain(testBound)
	reqs := []geoblocks.AggRequest{geoblocks.Count(), geoblocks.Sum("val")}
	for _, me := range []float64{0, dom.CellDiagonal(9), dom.CellDiagonal(7)} {
		opts := geoblocks.QueryOptions{MaxError: me}
		for _, poly := range testPolys(t, 23)[:5] {
			want, err := ds.QueryOpts(poly, opts, reqs...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rd.QueryOpts(poly, opts, reqs...)
			if err != nil {
				t.Fatal(err)
			}
			if !sameResult(got, want) || got.Level != want.Level || got.ErrorBound != want.ErrorBound {
				t.Fatalf("restored answer differs at max_error %g: %+v vs %+v", me, got, want)
			}
		}
	}
}
